//! Per-validation-point sorted neighbor orderings with incremental
//! invalidation — the data structure behind warm-cache k-NN re-scoring —
//! plus [`TopKCache`], its truncated sibling for paths that only ever
//! read the `k` nearest neighbors.

use crate::{par_for_each_mut, par_map_chunks};

/// For each validation point, the full list of training rows sorted by
/// `(distance, row index)` ascending. Building it costs one full distance
/// matrix + sort (parallelized over validation points); repairing one
/// training row costs a linear scan + binary-search insert per list
/// ([`NeighborCache::update_row`]), which is what makes repeated
/// KNN-Shapley / LOO re-scoring inside a cleaning loop cheap.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborCache {
    n_train: usize,
    /// `lists[v]` is sorted ascending by `(squared distance, train index)`.
    lists: Vec<Vec<(f64, u32)>>,
}

fn sort_key(a: &(f64, u32), b: &(f64, u32)) -> std::cmp::Ordering {
    a.0.partial_cmp(&b.0)
        .expect("neighbor distances must not be NaN")
        .then(a.1.cmp(&b.1))
}

impl NeighborCache {
    /// Chunk width for fan-out over validation points: big enough to
    /// amortize scheduling, small enough to balance skewed lists.
    const CHUNK: usize = 8;

    /// Builds the cache from a distance oracle. `dist(t, v)` must return a
    /// non-NaN distance between training row `t` and validation point `v`;
    /// ties are broken by training index, matching the KNN-Shapley
    /// convention. Runs in parallel over validation points, yet the result
    /// is identical for every thread count (each list is a pure function
    /// of its own distances).
    pub fn build<F>(n_train: usize, n_valid: usize, dist: F) -> Self
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        assert!(
            n_train <= u32::MAX as usize,
            "training set too large for u32 indices"
        );
        // A cold build is the "miss" side of the warm-path economics the
        // cached importance estimators report as `neighbor_cache.hit`.
        nde_trace::counter("neighbor_cache.miss").incr();
        let mut span = nde_trace::span("neighbor_cache.build");
        span.field("n_train", n_train);
        span.field("n_valid", n_valid);
        let lists: Vec<Vec<(f64, u32)>> = par_map_chunks(n_valid, Self::CHUNK, |range| {
            range
                .map(|v| {
                    let mut list: Vec<(f64, u32)> =
                        (0..n_train).map(|t| (dist(t, v), t as u32)).collect();
                    list.sort_by(sort_key);
                    list
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        NeighborCache { n_train, lists }
    }

    /// Number of training rows each list ranks.
    pub fn n_train(&self) -> usize {
        self.n_train
    }

    /// Number of validation points (lists).
    pub fn n_valid(&self) -> usize {
        self.lists.len()
    }

    /// The full sorted neighbor ordering for validation point `v`:
    /// `(squared distance, training row)` ascending by `(distance, index)`.
    pub fn neighbors(&self, v: usize) -> &[(f64, u32)] {
        &self.lists[v]
    }

    /// Re-ranks a single repaired training row. `new_dist(v)` returns the
    /// repaired row's distance to validation point `v`. Each list is
    /// updated by removing the old entry (linear scan) and inserting the
    /// new one at its sorted position (binary search) — O(n) per list
    /// versus O(n log n + n·d) for a rebuild. Updates run in parallel over
    /// lists; the result equals a full rebuild with the new distances.
    pub fn update_row<F>(&mut self, row: usize, new_dist: F)
    where
        F: Fn(usize) -> f64 + Sync,
    {
        assert!(
            row < self.n_train,
            "row {row} out of range (n_train = {})",
            self.n_train
        );
        nde_trace::counter("neighbor_cache.repair").incr();
        let row32 = row as u32;
        par_for_each_mut(&mut self.lists, Self::CHUNK, |v, list| {
            let old = list
                .iter()
                .position(|&(_, t)| t == row32)
                .expect("every training row appears in every list");
            list.remove(old);
            let entry = (new_dist(v), row32);
            assert!(!entry.0.is_nan(), "neighbor distances must not be NaN");
            let at = list.partition_point(|e| sort_key(e, &entry) == std::cmp::Ordering::Less);
            list.insert(at, entry);
        });
    }
}

/// A truncated neighbor cache: for each validation point, only the `k`
/// nearest training rows, sorted ascending by `(squared distance, train
/// index)` — the same entry shape and tie-break as [`NeighborCache`], cut
/// off after `k`.
///
/// Exact KNN-Shapley needs the *full* ordering (every training point's
/// rank matters), so it keeps [`NeighborCache`]; prediction, the k-NN
/// utility, and LOO only ever read a `k`-prefix, and a top-k structure fed
/// by sublinear index queries (e.g. a k-d tree) skips the O(n·m·d)
/// distance matrix entirely. Build fan-out runs over validation points
/// with fixed chunk boundaries, so the result is bit-identical for every
/// thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKCache {
    n_train: usize,
    k: usize,
    /// `lists[v]` holds the `min(k, n_train)` nearest training rows of
    /// validation point `v`, sorted ascending by `(distance, index)`.
    lists: Vec<Vec<(f64, u32)>>,
}

impl TopKCache {
    /// Builds the truncated cache from a per-validation-point query
    /// oracle. `query(v)` must return the `min(k, n_train)` nearest
    /// `(squared distance, train index)` pairs for validation point `v`,
    /// sorted ascending with ties broken by train index — exactly what
    /// `KdTree::nearest_with_distances` produces (and identical to a
    /// truncated brute-force scan).
    pub fn build<F>(n_train: usize, n_valid: usize, k: usize, query: F) -> Self
    where
        F: Fn(usize) -> Vec<(f64, u32)> + Sync,
    {
        assert!(
            n_train <= u32::MAX as usize,
            "training set too large for u32 indices"
        );
        nde_trace::counter("neighbor_cache.topk_build").incr();
        let mut span = nde_trace::span("neighbor_cache.build_topk");
        span.field("n_train", n_train);
        span.field("n_valid", n_valid);
        span.field("k", k);
        let expected = k.min(n_train);
        let lists: Vec<Vec<(f64, u32)>> = par_map_chunks(n_valid, Self::CHUNK, |range| {
            range
                .map(|v| {
                    let list = query(v);
                    assert_eq!(
                        list.len(),
                        expected,
                        "query({v}) must return min(k, n_train) neighbors"
                    );
                    debug_assert!(list
                        .windows(2)
                        .all(|w| sort_key(&w[0], &w[1]) != std::cmp::Ordering::Greater));
                    list
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        TopKCache { n_train, k, lists }
    }

    /// Chunk width for fan-out over validation points (matches
    /// [`NeighborCache`]).
    const CHUNK: usize = 8;

    /// Number of training rows the cache was built over.
    pub fn n_train(&self) -> usize {
        self.n_train
    }

    /// Number of validation points (lists).
    pub fn n_valid(&self) -> usize {
        self.lists.len()
    }

    /// The truncation depth `k` the cache was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The `min(k, n_train)` nearest neighbors of validation point `v`:
    /// `(squared distance, training row)` ascending by `(distance, index)`
    /// — a prefix of the corresponding [`NeighborCache::neighbors`] list.
    pub fn neighbors(&self, v: usize) -> &[(f64, u32)] {
        &self.lists[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-data without external crates.
    fn point(i: usize, dims: usize, salt: u64) -> Vec<f64> {
        (0..dims)
            .map(|d| {
                let z = crate::chunk_seed(salt, (i * dims + d) as u64);
                (z % 1000) as f64 / 100.0
            })
            .collect()
    }

    fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn lists_are_sorted_and_complete() {
        let train: Vec<Vec<f64>> = (0..40).map(|i| point(i, 3, 1)).collect();
        let valid: Vec<Vec<f64>> = (0..9).map(|i| point(i, 3, 2)).collect();
        let cache = NeighborCache::build(40, 9, |t, v| sq_dist(&train[t], &valid[v]));
        assert_eq!(cache.n_valid(), 9);
        assert_eq!(cache.n_train(), 40);
        for v in 0..9 {
            let list = cache.neighbors(v);
            assert_eq!(list.len(), 40);
            assert!(list
                .windows(2)
                .all(|w| sort_key(&w[0], &w[1]) != std::cmp::Ordering::Greater));
            let mut seen: Vec<u32> = list.iter().map(|&(_, t)| t).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..40).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn incremental_update_matches_rebuild() {
        let mut train: Vec<Vec<f64>> = (0..30).map(|i| point(i, 4, 3)).collect();
        let valid: Vec<Vec<f64>> = (0..7).map(|i| point(i, 4, 4)).collect();
        let mut cache = NeighborCache::build(30, 7, |t, v| sq_dist(&train[t], &valid[v]));

        for (step, &row) in [0usize, 17, 29, 17].iter().enumerate() {
            train[row] = point(100 + step, 4, 5);
            cache.update_row(row, |v| sq_dist(&train[row], &valid[v]));
            let rebuilt = NeighborCache::build(30, 7, |t, v| sq_dist(&train[t], &valid[v]));
            assert_eq!(cache, rebuilt, "divergence after repairing row {row}");
        }
    }

    #[test]
    fn tie_break_is_by_train_index() {
        // All training rows equidistant from the single validation point.
        let cache = NeighborCache::build(12, 1, |_, _| 2.5);
        let order: Vec<u32> = cache.neighbors(0).iter().map(|&(_, t)| t).collect();
        assert_eq!(order, (0..12).collect::<Vec<u32>>());
    }

    /// Brute-force top-k query oracle with the cache's tie-break.
    fn brute_top_k(train: &[Vec<f64>], valid: &[Vec<f64>], v: usize, k: usize) -> Vec<(f64, u32)> {
        let mut list: Vec<(f64, u32)> = train
            .iter()
            .enumerate()
            .map(|(t, row)| (sq_dist(row, &valid[v]), t as u32))
            .collect();
        list.sort_by(sort_key);
        list.truncate(k.min(train.len()));
        list
    }

    #[test]
    fn topk_cache_is_a_prefix_of_the_full_cache() {
        let train: Vec<Vec<f64>> = (0..40).map(|i| point(i, 3, 1)).collect();
        let valid: Vec<Vec<f64>> = (0..9).map(|i| point(i, 3, 2)).collect();
        let full = NeighborCache::build(40, 9, |t, v| sq_dist(&train[t], &valid[v]));
        for k in [1usize, 5, 40, 60] {
            let topk = TopKCache::build(40, 9, k, |v| brute_top_k(&train, &valid, v, k));
            assert_eq!(topk.k(), k);
            assert_eq!(topk.n_train(), 40);
            assert_eq!(topk.n_valid(), 9);
            for v in 0..9 {
                assert_eq!(
                    topk.neighbors(v),
                    &full.neighbors(v)[..k.min(40)],
                    "k={k}, v={v}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "min(k, n_train) neighbors")]
    fn topk_cache_rejects_short_lists() {
        let _ = TopKCache::build(10, 2, 5, |_| vec![(0.0, 0)]);
    }
}
