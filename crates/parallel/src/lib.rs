#![deny(missing_docs)]
//! Deterministic parallel execution layer (std-only).
//!
//! Two pieces, shared by the Identify/Debug/Learn hot paths:
//!
//! 1. **Fixed-chunk fan-out** ([`par_map_chunks`], [`par_reduce`],
//!    [`par_for_each_mut`]): work is split into chunks whose boundaries
//!    depend only on the input length — never on the worker count — and
//!    reductions fold chunk results in chunk order. Randomized chunks seed
//!    from [`chunk_seed`]. Together these make every result bit-identical
//!    for 1, 2, or N threads, so parallelism can be turned up without
//!    perturbing any seed-pinned experiment.
//! 2. **[`NeighborCache`]**: per-validation-point sorted neighbor orderings
//!    for k-NN utilities, with incremental invalidation when a single
//!    training row is repaired — the cleaning loop's re-score drops from a
//!    full O(m·n·(d + log n)) rebuild to O(m·n) list surgery. Its truncated
//!    sibling [`TopKCache`] keeps only the `k` nearest per validation
//!    point, letting index-backed builds (k-d tree queries) skip the full
//!    distance matrix for the paths that never read past rank `k`.
//!
//! Worker count comes from [`num_threads`]: the `NDE_THREADS` environment
//! variable when set, else `std::thread::available_parallelism()`.
//!
//! # Observability
//!
//! When tracing is on (`NDE_TRACE=human|json`, see the `nde-trace` crate
//! and `docs/OBSERVABILITY.md`), every multi-worker fan-out records its
//! per-worker busy time into the `parallel.worker_busy_us` histogram, the
//! max/mean busy ratio of the most recent fan-out into the
//! `parallel.imbalance` gauge, and bumps the `parallel.fan_outs` counter.
//! [`NeighborCache`] counts cold builds (`neighbor_cache.miss`) and
//! incremental repairs (`neighbor_cache.repair`); [`TopKCache`] counts
//! truncated builds (`neighbor_cache.topk_build`) under the
//! `neighbor_cache.build_topk` span. All instrumentation is
//! observational: results are bit-identical with tracing on or off.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

mod neighbor_cache;

pub use neighbor_cache::{NeighborCache, TopKCache};

/// Worker count for all fan-out primitives: `NDE_THREADS` when set to a
/// positive integer, otherwise `std::thread::available_parallelism()`
/// (falling back to 1 if that is unavailable). Read on every call so tests
/// can vary it; it bounds *scheduling* only — results never depend on it.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("NDE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Mixes a base seed with a chunk index (splitmix64 finalizer) so each
/// chunk gets an independent, reproducible RNG stream. Chunk indices are a
/// function of input length only, so the derived seeds — and hence any
/// randomized computation — are identical for every thread count.
pub fn chunk_seed(base: u64, chunk: u64) -> u64 {
    let mut z = base ^ chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn chunk_range(chunk: usize, chunk_len: usize, len: usize) -> Range<usize> {
    let start = chunk * chunk_len;
    start..((start + chunk_len).min(len))
}

/// Applies `f` to fixed-size index chunks of `0..len` and returns the
/// results **in chunk order**. Chunk boundaries are
/// `[0, chunk_len, 2·chunk_len, …]` regardless of worker count, and the
/// returned `Vec` is ordered by chunk index, so the output is a pure
/// function of `(len, chunk_len, f)`. Workers claim chunks through an
/// atomic counter (work stealing), so uneven chunks still balance.
pub fn par_map_chunks<R, F>(len: usize, chunk_len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    par_map_chunks_with(num_threads(), len, chunk_len, f)
}

/// [`par_map_chunks`] with an explicit worker cap instead of
/// [`num_threads`]. The cap bounds *scheduling* only — the chunk
/// decomposition and output are identical for every `workers` value.
pub fn par_map_chunks_with<R, F>(workers: usize, len: usize, chunk_len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = len.div_ceil(chunk_len);
    if n_chunks == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n_chunks);
    if workers <= 1 {
        // Same chunk decomposition as the parallel path: f sees identical
        // ranges, so per-chunk state (RNG streams, partial sums) matches.
        return (0..n_chunks)
            .map(|c| f(chunk_range(c, chunk_len, len)))
            .collect();
    }

    // Per-worker busy time is only measured when tracing is on; the off
    // path takes no clock readings at all.
    let trace_on = nde_trace::enabled();
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n_chunks);
    slots.resize_with(n_chunks, || None);
    let mut busy: Vec<Duration> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut produced = Vec::new();
                    let mut worker_busy = Duration::ZERO;
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        if trace_on {
                            let t0 = Instant::now();
                            produced.push((c, f(chunk_range(c, chunk_len, len))));
                            worker_busy += t0.elapsed();
                        } else {
                            produced.push((c, f(chunk_range(c, chunk_len, len))));
                        }
                    }
                    (produced, worker_busy)
                })
            })
            .collect();
        for handle in handles {
            let (produced, worker_busy) = handle.join().expect("parallel worker panicked");
            for (c, r) in produced {
                slots[c] = Some(r);
            }
            busy.push(worker_busy);
        }
    });
    if trace_on {
        record_fan_out(&busy, n_chunks);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every chunk is claimed exactly once"))
        .collect()
}

/// Folds one fan-out's per-worker busy times into the trace layer:
/// `parallel.worker_busy_us` (histogram), `parallel.imbalance` (gauge,
/// max/mean busy ratio — 1.0 is a perfectly balanced fan-out), and the
/// `parallel.fan_outs` counter. Only called when tracing is enabled.
fn record_fan_out(busy: &[Duration], n_chunks: usize) {
    let histogram = nde_trace::histogram("parallel.worker_busy_us");
    let mut max_us = 0u64;
    let mut sum_us = 0u64;
    for b in busy {
        let us = b.as_micros() as u64;
        histogram.record(us);
        max_us = max_us.max(us);
        sum_us += us;
    }
    if !busy.is_empty() && sum_us > 0 {
        let mean = sum_us as f64 / busy.len() as f64;
        nde_trace::gauge("parallel.imbalance").set(max_us as f64 / mean);
    }
    nde_trace::counter("parallel.fan_outs").incr();
    nde_trace::counter("parallel.chunks").add(n_chunks as u64);
}

/// Fused map + ordered fold: chunk results from [`par_map_chunks`] are
/// folded **in chunk index order**, so non-associative accumulations
/// (floating-point sums included) come out bit-identical for any thread
/// count.
pub fn par_reduce<A, R, F, G>(len: usize, chunk_len: usize, init: A, map: F, fold: G) -> A
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    par_map_chunks(len, chunk_len, map)
        .into_iter()
        .fold(init, fold)
}

/// [`par_reduce`] with an explicit worker cap instead of [`num_threads`].
/// As with [`par_map_chunks_with`], the result never depends on `workers`.
pub fn par_reduce_with<A, R, F, G>(
    workers: usize,
    len: usize,
    chunk_len: usize,
    init: A,
    map: F,
    fold: G,
) -> A
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    par_map_chunks_with(workers, len, chunk_len, map)
        .into_iter()
        .fold(init, fold)
}

/// Applies `f(index, &mut item)` to every element of `items` in parallel.
/// Elements are updated independently (each worker owns disjoint chunk
/// slices), so the final state never depends on scheduling.
pub fn par_for_each_mut<T, F>(items: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let len = items.len();
    let n_chunks = len.div_ceil(chunk_len);
    let workers = num_threads().min(n_chunks);
    if workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }

    // Static round-robin assignment of chunk slices to workers. Each item
    // is touched by exactly one worker, so this is deterministic no matter
    // how the threads interleave.
    let trace_on = nde_trace::enabled();
    let mut per_worker: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
    for (c, slice) in items.chunks_mut(chunk_len).enumerate() {
        per_worker[c % workers].push((c * chunk_len, slice));
    }
    let mut busy: Vec<Duration> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = per_worker
            .into_iter()
            .map(|assignment| {
                let f = &f;
                scope.spawn(move || {
                    let start = trace_on.then(Instant::now);
                    for (base, slice) in assignment {
                        for (offset, item) in slice.iter_mut().enumerate() {
                            f(base + offset, item);
                        }
                    }
                    start.map_or(Duration::ZERO, |t0| t0.elapsed())
                })
            })
            .collect();
        for handle in handles {
            busy.push(handle.join().expect("parallel worker panicked"));
        }
    });
    if trace_on {
        record_fan_out(&busy, n_chunks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_threads<R>(n: usize, body: impl FnOnce() -> R) -> R {
        // Tests in this crate run serially per-process env mutation; the
        // integration determinism suite covers cross-crate behavior.
        std::env::set_var("NDE_THREADS", n.to_string());
        let out = body();
        std::env::remove_var("NDE_THREADS");
        out
    }

    #[test]
    fn num_threads_honors_env() {
        assert_eq!(with_threads(3, num_threads), 3);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn map_chunks_is_ordered_and_complete() {
        for &threads in &[1usize, 2, 5, 16] {
            let out = with_threads(threads, || {
                par_map_chunks(103, 10, |r| r.collect::<Vec<usize>>())
            });
            assert_eq!(out.len(), 11);
            let flat: Vec<usize> = out.into_iter().flatten().collect();
            assert_eq!(flat, (0..103).collect::<Vec<_>>());
        }
    }

    #[test]
    fn reduce_is_bit_identical_across_thread_counts() {
        // A deliberately ill-conditioned float sum: any reassociation
        // changes the low bits, so bit equality proves ordered folding.
        let values: Vec<f64> = (0..1000)
            .map(|i| {
                ((i * 2654435761u64 as usize) as f64).sqrt() * if i % 3 == 0 { 1e-9 } else { 1e6 }
            })
            .collect();
        let sum_with = |threads: usize| {
            with_threads(threads, || {
                par_reduce(
                    values.len(),
                    7,
                    0.0f64,
                    |r| r.map(|i| values[i]).fold(0.0f64, |a, b| a + b),
                    |acc, part| acc + part,
                )
            })
        };
        let reference = sum_with(1);
        for &threads in &[2usize, 3, 8] {
            assert_eq!(sum_with(threads).to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn chunk_seeds_are_stable_and_distinct() {
        assert_eq!(chunk_seed(42, 7), chunk_seed(42, 7));
        let seeds: std::collections::HashSet<u64> = (0..100).map(|c| chunk_seed(42, c)).collect();
        assert_eq!(seeds.len(), 100);
        assert_ne!(chunk_seed(1, 0), chunk_seed(2, 0));
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        for &threads in &[1usize, 4] {
            let mut items: Vec<usize> = vec![0; 97];
            with_threads(threads, || {
                par_for_each_mut(&mut items, 8, |i, item| *item += i + 1);
            });
            assert!(items.iter().enumerate().all(|(i, &v)| v == i + 1));
        }
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(par_map_chunks(0, 4, |r| r.len()).is_empty());
        let mut empty: [u8; 0] = [];
        par_for_each_mut(&mut empty, 4, |_, _| {});
    }
}
