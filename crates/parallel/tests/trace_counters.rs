//! Pins that nde-trace counters are atomic under the deterministic
//! fan-out primitives: concurrent workers bumping one shared counter must
//! lose no increments, and fan-out telemetry must appear once enabled.

use nde_parallel::{par_for_each_mut, par_map_chunks_with};

#[test]
fn counter_is_atomic_under_par_for_each_mut() {
    // This test binary is its own process; the sink override is local.
    nde_trace::configure(nde_trace::Sink::Human, None);
    nde_trace::reset();
    std::env::set_var("NDE_THREADS", "8");

    let hits = nde_trace::counter("test.parallel_hits");
    let mut items: Vec<u64> = vec![0; 10_000];
    par_for_each_mut(&mut items, 16, |i, item| {
        *item = i as u64;
        hits.incr();
    });
    assert_eq!(
        hits.value(),
        10_000,
        "atomic counter must not lose increments across workers"
    );
    assert!(items.iter().enumerate().all(|(i, &v)| v == i as u64));

    // The fan-out recorded its per-worker telemetry.
    assert!(nde_trace::counter_value("parallel.fan_outs") >= 1);
    let busy = nde_trace::histogram("parallel.worker_busy_us").snapshot();
    assert!(busy.count >= 1, "worker busy histogram must be populated");

    // Counting from inside par_map_chunks_with workers is equally safe.
    let chunk_hits = nde_trace::counter("test.chunk_hits");
    let out = par_map_chunks_with(8, 1000, 7, |range| {
        chunk_hits.add(range.len() as u64);
        range.len()
    });
    assert_eq!(out.iter().sum::<usize>(), 1000);
    assert_eq!(chunk_hits.value(), 1000);

    std::env::remove_var("NDE_THREADS");
    nde_trace::configure(nde_trace::Sink::Off, None);
}
