//! Property-based tests for the deterministic parallel layer: the
//! incremental [`NeighborCache`] repair path must be indistinguishable from
//! rebuilding the cache from scratch, for any data and repair sequence.

use nde_parallel::NeighborCache;
use proptest::prelude::*;

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn arb_points(n: usize, d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, d..=d), n..=n)
}

proptest! {
    /// A sequence of single-row repairs applied with `update_row` yields
    /// exactly the cache that `build` would produce from the final state —
    /// same neighbors, same order, same distances, bit for bit.
    #[test]
    fn incremental_repair_matches_full_rebuild(
        (train, valid, repairs) in (2usize..12, 1usize..8, 1usize..3).prop_flat_map(
            |(n_train, n_valid, d)| {
                (
                    arb_points(n_train, d),
                    arb_points(n_valid, d),
                    prop::collection::vec(
                        ((0..n_train), prop::collection::vec(-50.0f64..50.0, d..=d)),
                        1..6,
                    ),
                )
            },
        )
    ) {
        let mut train = train;
        let mut cache = NeighborCache::build(train.len(), valid.len(), |t, v| {
            sq_dist(&train[t], &valid[v])
        });
        for (row, new_point) in repairs {
            train[row] = new_point;
            let train_ref = &train;
            let valid_ref = &valid;
            cache.update_row(row, |v| sq_dist(&train_ref[row], &valid_ref[v]));
        }
        let rebuilt = NeighborCache::build(train.len(), valid.len(), |t, v| {
            sq_dist(&train[t], &valid[v])
        });
        prop_assert_eq!(&cache, &rebuilt);
    }

    /// Chunked parallel reduction of a float sum is bit-identical to the
    /// single-worker fold for any worker cap.
    #[test]
    fn par_reduce_is_worker_count_invariant(
        values in prop::collection::vec(-1e6f64..1e6, 0..80),
        workers in 1usize..9,
    ) {
        let sum = |w: usize| {
            nde_parallel::par_reduce_with(
                w,
                values.len(),
                5,
                0.0f64,
                |r| r.map(|i| values[i]).fold(0.0f64, |a, b| a + b),
                |acc, part| acc + part,
            )
        };
        prop_assert_eq!(sum(workers).to_bits(), sum(1).to_bits());
    }
}
