//! Affine arithmetic (zonotopes): the relational abstract domain Zorro
//! uses. An affine form `x̂ = c + Σᵢ aᵢ·εᵢ` tracks *which* noise symbol each
//! uncertainty came from, so `x̂ − x̂ = 0` exactly — the property that makes
//! symbolic gradient descent over shared missing values dramatically
//! tighter than interval arithmetic.

use crate::interval::Interval;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Allocates globally fresh noise-symbol ids (`εᵢ`).
#[derive(Debug, Default)]
pub struct SymbolPool {
    next: AtomicUsize,
}

impl SymbolPool {
    /// A new pool starting at symbol 0.
    pub fn new() -> Self {
        SymbolPool::default()
    }

    /// A fresh symbol id.
    pub fn fresh(&self) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

/// An affine form `c + Σᵢ aᵢ εᵢ` with `εᵢ ∈ [−1, 1]`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AffineForm {
    /// Center value `c`.
    pub center: f64,
    /// Partial deviations, keyed by noise-symbol id.
    pub terms: BTreeMap<usize, f64>,
}

impl AffineForm {
    /// The constant form `c`.
    pub fn constant(c: f64) -> Self {
        AffineForm {
            center: c,
            terms: BTreeMap::new(),
        }
    }

    /// A fresh uncertain value ranging over `[lo, hi]`, introducing one new
    /// noise symbol from `pool`.
    pub fn from_interval(iv: Interval, pool: &SymbolPool) -> Self {
        let mut terms = BTreeMap::new();
        if iv.radius() > 0.0 {
            terms.insert(pool.fresh(), iv.radius());
        }
        AffineForm {
            center: iv.mid(),
            terms,
        }
    }

    /// Total deviation `Σ|aᵢ|`.
    pub fn radius(&self) -> f64 {
        self.terms.values().map(|a| a.abs()).sum()
    }

    /// The concretization `[c − r, c + r]`.
    pub fn to_interval(&self) -> Interval {
        let r = self.radius();
        Interval {
            lo: self.center - r,
            hi: self.center + r,
        }
    }

    /// Number of active noise symbols.
    pub fn n_symbols(&self) -> usize {
        self.terms.len()
    }

    /// Sum.
    pub fn add(&self, other: &AffineForm) -> AffineForm {
        let mut terms = self.terms.clone();
        for (&s, &a) in &other.terms {
            let entry = terms.entry(s).or_insert(0.0);
            *entry += a;
            if entry.abs() < 1e-300 {
                terms.remove(&s);
            }
        }
        AffineForm {
            center: self.center + other.center,
            terms,
        }
    }

    /// Difference. `x.sub(&x)` is exactly zero — the relational payoff.
    pub fn sub(&self, other: &AffineForm) -> AffineForm {
        self.add(&other.scale(-1.0))
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f64) -> AffineForm {
        if s == 0.0 {
            return AffineForm::constant(0.0);
        }
        AffineForm {
            center: self.center * s,
            terms: self.terms.iter().map(|(&k, &a)| (k, a * s)).collect(),
        }
    }

    /// Adds a constant.
    pub fn add_const(&self, c: f64) -> AffineForm {
        AffineForm {
            center: self.center + c,
            terms: self.terms.clone(),
        }
    }

    /// Product of two affine forms. The linear part is exact; the quadratic
    /// remainder `(Σaᵢεᵢ)(Σbⱼεⱼ)` is bounded by `rad(x)·rad(y)` and folded
    /// into a fresh noise symbol — the standard sound affine multiplication.
    pub fn mul(&self, other: &AffineForm, pool: &SymbolPool) -> AffineForm {
        let mut out = AffineForm::constant(self.center * other.center);
        // x0 · Σ bⱼεⱼ
        for (&s, &b) in &other.terms {
            *out.terms.entry(s).or_insert(0.0) += self.center * b;
        }
        // y0 · Σ aᵢεᵢ
        for (&s, &a) in &self.terms {
            *out.terms.entry(s).or_insert(0.0) += other.center * a;
        }
        out.terms.retain(|_, a| a.abs() > 1e-300);
        let remainder = self.radius() * other.radius();
        if remainder > 0.0 {
            out.terms.insert(pool.fresh(), remainder);
        }
        out
    }

    /// Sound compaction: keeps the `keep` largest-magnitude terms and folds
    /// the rest into one fresh symbol. Controls symbol growth in long
    /// symbolic computations at a (bounded) precision cost.
    pub fn condense(&self, keep: usize, pool: &SymbolPool) -> AffineForm {
        if self.terms.len() <= keep {
            return self.clone();
        }
        let mut entries: Vec<(usize, f64)> = self.terms.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()).then(a.0.cmp(&b.0)));
        let mut terms: BTreeMap<usize, f64> = entries[..keep].iter().copied().collect();
        let folded: f64 = entries[keep..].iter().map(|(_, a)| a.abs()).sum();
        if folded > 0.0 {
            // Inflate by a few ulps of the *total* radius so the fold is an
            // over-approximation even under floating-point summation-order
            // differences between the old and new term sets.
            terms.insert(pool.fresh(), folded + self.radius() * 8.0 * f64::EPSILON);
        }
        AffineForm {
            center: self.center,
            terms,
        }
    }

    /// Evaluates the form at a concrete assignment of noise symbols
    /// (symbols absent from `eps` read as 0; values are clamped to [−1, 1]).
    pub fn eval(&self, eps: &dyn Fn(usize) -> f64) -> f64 {
        self.center
            + self
                .terms
                .iter()
                .map(|(&s, &a)| a * eps(s).clamp(-1.0, 1.0))
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_subtraction_is_exact_zero() {
        let pool = SymbolPool::new();
        let x = AffineForm::from_interval(Interval::new(1.0, 3.0), &pool);
        let z = x.sub(&x);
        assert_eq!(z.center, 0.0);
        assert_eq!(z.radius(), 0.0);
        // Interval arithmetic would give [-2, 2] here.
        let via_interval = x.to_interval() - x.to_interval();
        assert_eq!(via_interval.width(), 4.0);
    }

    #[test]
    fn concretization_matches_source_interval() {
        let pool = SymbolPool::new();
        let x = AffineForm::from_interval(Interval::new(-1.0, 5.0), &pool);
        assert_eq!(x.to_interval(), Interval::new(-1.0, 5.0));
        assert_eq!(x.n_symbols(), 1);
        let c = AffineForm::constant(2.5);
        assert_eq!(c.to_interval(), Interval::point(2.5));
    }

    #[test]
    fn addition_correlates_shared_symbols() {
        let pool = SymbolPool::new();
        let x = AffineForm::from_interval(Interval::new(0.0, 2.0), &pool);
        let sum = x.add(&x); // = 2x, range [0, 4]
        assert_eq!(sum.to_interval(), Interval::new(0.0, 4.0));
        assert_eq!(sum.n_symbols(), 1);
    }

    #[test]
    fn multiplication_is_sound() {
        let pool = SymbolPool::new();
        let x = AffineForm::from_interval(Interval::new(1.0, 2.0), &pool);
        let y = AffineForm::from_interval(Interval::new(-1.0, 1.0), &pool);
        let prod = x.mul(&y, &pool);
        let true_range = Interval::new(1.0, 2.0) * Interval::new(-1.0, 1.0);
        assert!(prod.to_interval().contains_interval(&true_range));
    }

    #[test]
    fn squaring_via_mul_contains_true_square() {
        let pool = SymbolPool::new();
        let x = AffineForm::from_interval(Interval::new(-1.0, 3.0), &pool);
        let sq = x.mul(&x, &pool);
        let true_sq = Interval::new(-1.0, 3.0).square();
        assert!(sq.to_interval().contains_interval(&true_sq));
    }

    #[test]
    fn eval_is_inside_concretization() {
        let pool = SymbolPool::new();
        let x = AffineForm::from_interval(Interval::new(0.0, 10.0), &pool);
        let y = x.scale(2.0).add_const(1.0);
        for &e in &[-1.0, -0.3, 0.0, 0.7, 1.0] {
            let v = y.eval(&|_| e);
            assert!(y.to_interval().contains(v), "{v} at ε={e}");
        }
    }

    #[test]
    fn condense_preserves_soundness() {
        let pool = SymbolPool::new();
        let mut acc = AffineForm::constant(0.0);
        for i in 0..20 {
            let x = AffineForm::from_interval(Interval::new(0.0, 0.1 * (i + 1) as f64), &pool);
            acc = acc.add(&x);
        }
        let full_range = acc.to_interval();
        let small = acc.condense(5, &pool);
        assert_eq!(small.n_symbols(), 6); // 5 kept + 1 folded
        assert!(small.to_interval().contains_interval(&full_range));
        // Same radius in this all-positive case (condensation is exact for
        // the interval view).
        assert!((small.radius() - acc.radius()).abs() < 1e-9);
    }

    #[test]
    fn scale_by_zero_is_constant_zero() {
        let pool = SymbolPool::new();
        let x = AffineForm::from_interval(Interval::new(1.0, 2.0), &pool);
        let z = x.scale(0.0);
        assert_eq!(z, AffineForm::constant(0.0));
    }
}
