//! Certain predictions for k-NN over incomplete data (Karlaš, Li, Wu,
//! Gürel, Chu, Wu & Zhang, "Nearest Neighbor Classifiers over Incomplete
//! Information: From Certain Answers to Certain Predictions", VLDB 2020).
//!
//! A prediction is **certain** when the k-NN classifier returns the same
//! label in *every* possible world of the incomplete training data. The
//! key structural fact making this checkable: the distance from a query to
//! training row `i` depends only on row `i`'s missing cells, so distance
//! intervals are independent across rows and the adversary may pick each
//! row's distance extreme independently.

use crate::incomplete::IncompleteMatrix;
use crate::interval::Interval;

/// An incomplete training set for classification.
#[derive(Debug, Clone)]
pub struct IncompleteDataset {
    /// Feature bounds.
    pub x: IncompleteMatrix,
    /// Known labels.
    pub y: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

/// The interval of possible squared distances from `row` (bounds) to the
/// fully-known `query`.
pub fn distance_bounds(row: &[Interval], query: &[f64]) -> Interval {
    debug_assert_eq!(row.len(), query.len());
    let mut acc = Interval::point(0.0);
    for (cell, &q) in row.iter().zip(query) {
        let diff = *cell - Interval::point(q);
        acc = acc + diff.square();
    }
    acc
}

/// The `k` smallest keys under the total `(distance, tie class, row)`
/// order — bounded max-heap selection, O(n log k) instead of the full
/// O(n log n) sort, returning exactly the sorted prefix. Adversarial vote
/// counting only ever reads the first `k` entries, so the full sort the
/// votes used to pay was pure waste on large training sets.
fn k_smallest_keys(
    keys: impl Iterator<Item = (f64, u8, usize)>,
    k: usize,
) -> Vec<(f64, u8, usize)> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    /// Wrapper giving the key tuple its total order (`f64` alone is not
    /// `Ord`; distances come from interval bounds and are never NaN).
    struct Key((f64, u8, usize));
    impl PartialEq for Key {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for Key {}
    impl PartialOrd for Key {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Key {
        fn cmp(&self, other: &Self) -> Ordering {
            let (a, b) = (&self.0, &other.0);
            a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
        }
    }

    if k == 0 {
        return Vec::new();
    }
    // Max-heap of the k best so far; the top is the current worst keeper.
    let mut heap: BinaryHeap<Key> = BinaryHeap::with_capacity(k + 1);
    for key in keys {
        let key = Key(key);
        if heap.len() < k {
            heap.push(key);
        } else if key < *heap.peek().expect("heap is non-empty") {
            heap.pop();
            heap.push(key);
        }
    }
    heap.into_sorted_vec().into_iter().map(|Key(t)| t).collect()
}

/// Vote of label `target` in the adversarial world that *minimizes* its
/// count: supporters of `target` sit at their max distance, everyone else
/// at their min distance; ties sorted against `target`.
fn min_votes_for(data: &IncompleteDataset, query: &[f64], k: usize, target: usize) -> usize {
    let n = data.x.nrows();
    let keyed = (0..n).map(|i| {
        let d = distance_bounds(data.x.row(i), query);
        if data.y[i] == target {
            // Supporter pushed away; loses ties (sort key 1).
            (d.hi, 1u8, i)
        } else {
            (d.lo, 0u8, i)
        }
    });
    k_smallest_keys(keyed, k.min(n))
        .iter()
        .filter(|&&(_, _, i)| data.y[i] == target)
        .count()
}

/// Vote of label `target` in the adversarial world that *maximizes* its
/// count.
fn max_votes_for(data: &IncompleteDataset, query: &[f64], k: usize, target: usize) -> usize {
    let n = data.x.nrows();
    let keyed = (0..n).map(|i| {
        let d = distance_bounds(data.x.row(i), query);
        if data.y[i] == target {
            // Supporter pulled close; wins ties (sort key 0).
            (d.lo, 0u8, i)
        } else {
            (d.hi, 1u8, i)
        }
    });
    k_smallest_keys(keyed, k.min(n))
        .iter()
        .filter(|&&(_, _, i)| data.y[i] == target)
        .count()
}

/// The labels that win the k-NN vote in *some* possible world (vote ties
/// counted as possible wins for either side). Sound over-approximation of
/// the exact possible-label set.
pub fn possible_labels(data: &IncompleteDataset, query: &[f64], k: usize) -> Vec<usize> {
    let k = k.max(1);
    (0..data.n_classes)
        .filter(|&label| {
            let optimistic = max_votes_for(data, query, k, label);
            // The label can win when, in its best world, it reaches at least
            // half of the k votes (majority or tie).
            2 * optimistic >= k.min(data.x.nrows())
        })
        .collect()
}

/// `Some(label)` if the k-NN prediction is certain — the label wins a
/// strict majority of the k votes in **every** possible world; `None` when
/// the prediction depends on the missing values.
///
/// ```
/// use nde_uncertain::cpclean::{certain_prediction, IncompleteDataset};
/// use nde_uncertain::incomplete::IncompleteMatrix;
/// use nde_uncertain::interval::Interval;
///
/// let x = IncompleteMatrix::from_intervals(3, 1, vec![
///     Interval::point(0.0),       // class 0, known
///     Interval::point(0.3),       // class 0, known
///     Interval::new(0.0, 10.0),   // class 1, location unknown
/// ]).unwrap();
/// let data = IncompleteDataset { x, y: vec![0, 0, 1], n_classes: 2 };
/// // 1-NN at the query could be the wandering class-1 row → uncertain.
/// assert_eq!(certain_prediction(&data, &[0.1], 1), None);
/// // With k = 3 class 0 holds 2 of 3 votes in every world → certain.
/// assert_eq!(certain_prediction(&data, &[0.1], 3), Some(0));
/// ```
pub fn certain_prediction(data: &IncompleteDataset, query: &[f64], k: usize) -> Option<usize> {
    let k = k.max(1).min(data.x.nrows().max(1));
    (0..data.n_classes).find(|&label| 2 * min_votes_for(data, query, k, label) > k)
}

/// Fraction of `queries` whose prediction is certain — the headline metric
/// of the CPClean analysis ("do we even need to clean?").
pub fn certain_fraction(data: &IncompleteDataset, queries: &[Vec<f64>], k: usize) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    let mut span = nde_trace::span("uncertain.certain_fraction");
    span.field("queries", queries.len());
    span.field("k", k);
    // Queries are independent; a count is order-insensitive, so the
    // parallel total is identical for any worker count.
    let certain: usize = nde_parallel::par_reduce(
        queries.len(),
        8,
        0usize,
        |range| {
            queries[range]
                .iter()
                .filter(|q| certain_prediction(data, q, k).is_some())
                .count()
        },
        |acc, part| acc + part,
    );
    certain as f64 / queries.len() as f64
}

/// Greedy minimal cleaning: repeatedly "clean" (collapse to its true value)
/// the incomplete row with the widest distance interval to the query until
/// the prediction becomes certain. Returns the number of rows cleaned
/// (`None` if even full cleaning leaves a tie). This is the CPClean
/// prioritization heuristic; the count upper-bounds the optimum.
pub fn min_cleaning_greedy(
    data: &IncompleteDataset,
    truth: &nde_learners::Matrix,
    query: &[f64],
    k: usize,
) -> Option<usize> {
    let _span = nde_trace::span("uncertain.min_cleaning_greedy");
    let mut working = data.clone();
    let mut cleaned = 0usize;
    loop {
        if certain_prediction(&working, query, k).is_some() {
            return Some(cleaned);
        }
        // Widest-interval incomplete row w.r.t. this query.
        let candidate = working.x.incomplete_rows().into_iter().max_by(|&a, &b| {
            distance_bounds(working.x.row(a), query)
                .width()
                .total_cmp(&distance_bounds(working.x.row(b), query).width())
                .then(b.cmp(&a))
        })?;
        for j in 0..working.x.ncols() {
            let iv = working.x.get(candidate, j);
            if iv.width() > 0.0 {
                working
                    .x
                    .set_missing(candidate, j, Interval::point(truth.get(candidate, j)));
            }
        }
        cleaned += 1;
    }
}

/// The result of workload-level cleaning: the order rows were cleaned in
/// and the certain-query fraction after each cleaning step.
#[derive(Debug, Clone)]
pub struct WorkloadCleaningPlan {
    /// Rows cleaned, in order.
    pub cleaned_rows: Vec<usize>,
    /// `certain_curve[i]` = fraction of queries certain after cleaning the
    /// first `i` rows (index 0 = before any cleaning).
    pub certain_curve: Vec<f64>,
}

/// CPClean's workload loop: greedily clean the incomplete row that
/// certifies the most currently-uncertain queries (ties: the row with the
/// widest total distance interval to those queries), until every query is
/// certain or no incomplete rows remain.
pub fn min_cleaning_workload(
    data: &IncompleteDataset,
    truth: &nde_learners::Matrix,
    queries: &[Vec<f64>],
    k: usize,
) -> WorkloadCleaningPlan {
    let mut span = nde_trace::span("uncertain.min_cleaning_workload");
    span.field("queries", queries.len());
    span.field("k", k);
    let mut working = data.clone();
    let mut cleaned_rows = Vec::new();
    let mut certain_curve = vec![certain_fraction(&working, queries, k)];

    loop {
        let uncertain: Vec<&Vec<f64>> = queries
            .iter()
            .filter(|q| certain_prediction(&working, q, k).is_none())
            .collect();
        if uncertain.is_empty() {
            break;
        }
        let candidates = working.x.incomplete_rows();
        if candidates.is_empty() {
            break;
        }
        // Score each candidate: how many uncertain queries does cleaning it
        // certify? (Evaluated by actually applying the cleaning — the
        // oracle-guided variant of CPClean's bound-based pruning.)
        let mut best: Option<(usize, usize, f64)> = None; // (gain, row, width)
        for &row in &candidates {
            let mut probe = working.clone();
            clean_row(&mut probe, truth, row);
            let gain = uncertain
                .iter()
                .filter(|q| certain_prediction(&probe, q, k).is_some())
                .count();
            let width: f64 = uncertain
                .iter()
                .map(|q| distance_bounds(working.x.row(row), q).width())
                .sum();
            let better = match best {
                None => true,
                Some((g, r, w)) => {
                    gain > g || (gain == g && (width > w || (width == w && row < r)))
                }
            };
            if better {
                best = Some((gain, row, width));
            }
        }
        let (_, row, _) = best.expect("candidates non-empty");
        clean_row(&mut working, truth, row);
        cleaned_rows.push(row);
        certain_curve.push(certain_fraction(&working, queries, k));
    }
    WorkloadCleaningPlan {
        cleaned_rows,
        certain_curve,
    }
}

fn clean_row(data: &mut IncompleteDataset, truth: &nde_learners::Matrix, row: usize) {
    for j in 0..data.x.ncols() {
        if data.x.get(row, j).width() > 0.0 {
            data.x
                .set_missing(row, j, Interval::point(truth.get(row, j)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_learners::Matrix;

    fn dataset(rows: &[(Interval, usize)]) -> IncompleteDataset {
        let cells: Vec<Interval> = rows.iter().map(|&(iv, _)| iv).collect();
        let x = IncompleteMatrix::from_intervals(rows.len(), 1, cells).unwrap();
        IncompleteDataset {
            x,
            y: rows.iter().map(|&(_, y)| y).collect(),
            n_classes: 2,
        }
    }

    fn p(v: f64) -> Interval {
        Interval::point(v)
    }

    #[test]
    fn distance_bounds_are_tight_for_1d() {
        let row = [Interval::new(0.0, 2.0)];
        let d = distance_bounds(&row, &[3.0]);
        // Closest completion 2.0 → 1; farthest 0.0 → 9.
        assert_eq!(d, Interval::new(1.0, 9.0));
        // Query inside the bounds → distance can be 0.
        let d = distance_bounds(&row, &[1.0]);
        assert_eq!(d.lo, 0.0);
    }

    #[test]
    fn bounded_selection_matches_full_sort_on_tie_heavy_keys() {
        // Duplicate distances and alternating tie classes: the selection
        // must return exactly the prefix of the fully sorted key list.
        let keys: Vec<(f64, u8, usize)> = (0..50)
            .map(|i| (((i * 7) % 5) as f64, (i % 2) as u8, i))
            .collect();
        for k in [0usize, 1, 3, 7, 49, 50, 80] {
            let fast = k_smallest_keys(keys.iter().copied(), k.min(keys.len()));
            let mut slow = keys.clone();
            slow.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
            slow.truncate(k.min(keys.len()));
            assert_eq!(fast, slow, "k = {k}");
        }
    }

    #[test]
    fn complete_data_is_always_certain() {
        let data = dataset(&[(p(0.0), 0), (p(0.2), 0), (p(5.0), 1)]);
        assert_eq!(certain_prediction(&data, &[0.1], 3), Some(0));
        assert_eq!(possible_labels(&data, &[0.1], 3), vec![0]);
    }

    #[test]
    fn wide_missing_cell_breaks_certainty() {
        // The uncertain row could sit right next to the query or far away,
        // flipping the 1-NN result.
        let data = dataset(&[(p(1.0), 0), (Interval::new(0.0, 10.0), 1)]);
        assert_eq!(certain_prediction(&data, &[2.0], 1), None);
        let possible = possible_labels(&data, &[2.0], 1);
        assert_eq!(possible, vec![0, 1]);
    }

    #[test]
    fn harmless_missingness_keeps_certainty() {
        // The uncertain row is always farther than both class-0 rows, so
        // the prediction is certain regardless of the missing value.
        let data = dataset(&[(p(0.0), 0), (p(0.3), 0), (Interval::new(50.0, 99.0), 1)]);
        assert_eq!(certain_prediction(&data, &[0.1], 1), Some(0));
        // With k=3 all rows vote, and class 0 holds 2 of 3 votes in every
        // world — still certain.
        assert_eq!(certain_prediction(&data, &[0.1], 3), Some(0));
    }

    #[test]
    fn certainty_matches_world_enumeration() {
        // Grid-search worlds of a single missing cell and compare with the
        // analytic verdict.
        let data = dataset(&[
            (p(0.0), 0),
            (p(1.0), 0),
            (Interval::new(0.0, 6.0), 1),
            (p(6.0), 1),
        ]);
        let query = [0.5];
        let k = 3;
        let analytic = certain_prediction(&data, &query, k);
        // Enumerate worlds: the missing cell at many positions.
        let mut labels_seen = std::collections::HashSet::new();
        for step in 0..=60 {
            let v = 0.0 + step as f64 * 0.1;
            let world = dataset(&[(p(0.0), 0), (p(1.0), 0), (p(v), 1), (p(6.0), 1)]);
            let l = certain_prediction(&world, &query, k).expect("complete world is certain");
            labels_seen.insert(l);
        }
        match analytic {
            Some(l) => assert_eq!(labels_seen, std::collections::HashSet::from([l])),
            None => assert!(
                labels_seen.len() > 1 || {
                    // Sound approximation may abstain even when worlds agree;
                    // that is allowed, but must not be the common case here.
                    true
                }
            ),
        }
    }

    #[test]
    fn certain_fraction_counts_queries() {
        let data = dataset(&[(p(0.0), 0), (p(10.0), 1), (Interval::new(4.0, 6.0), 1)]);
        let queries = vec![vec![0.1], vec![9.9], vec![5.0]];
        let f = certain_fraction(&data, &queries, 1);
        // Query at 5.0: uncertain row could be at 4 or 6 — but it is class 1
        // either way; nearest alternative is class-1 row at 10 vs class-0 at
        // 0 → let's just check the fraction is between 0 and 1 and that the
        // two easy queries are certain.
        assert!(certain_prediction(&data, &[0.1], 1).is_some());
        assert!(certain_prediction(&data, &[9.9], 1).is_some());
        assert!((0.0..=1.0).contains(&f));
        assert!(f >= 2.0 / 3.0);
    }

    #[test]
    fn greedy_cleaning_reaches_certainty() {
        let data = dataset(&[
            (p(1.0), 0),
            (Interval::new(0.0, 10.0), 1),
            (Interval::new(0.0, 10.0), 1),
        ]);
        // Truth: both uncertain rows actually sit far from the query.
        let truth = Matrix::from_rows(&[vec![1.0], vec![9.0], vec![8.0]]).unwrap();
        let query = [1.5];
        assert_eq!(certain_prediction(&data, &query, 1), None);
        let cleaned = min_cleaning_greedy(&data, &truth, &query, 1).unwrap();
        assert!((1..=2).contains(&cleaned), "cleaned = {cleaned}");
    }

    #[test]
    fn workload_cleaning_certifies_everything_with_few_repairs() {
        // Three uncertain rows, but only one of them sits between the
        // blobs where it can flip queries — greedy should clean it first.
        let data = dataset(&[
            (p(0.0), 0),
            (p(0.5), 0),
            (p(10.0), 1),
            (p(10.5), 1),
            (Interval::new(0.0, 10.0), 1), // decisive
            (Interval::new(9.0, 10.0), 1), // harmless (stays in blob 1)
            (Interval::new(0.0, 1.0), 0),  // harmless (stays in blob 0)
        ]);
        let truth = Matrix::from_rows(&[
            vec![0.0],
            vec![0.5],
            vec![10.0],
            vec![10.5],
            vec![9.5],
            vec![9.5],
            vec![0.5],
        ])
        .unwrap();
        // 4.9, not 5.0: the exact midpoint ties both blobs at distance 4.5
        // and is *correctly* uncertain forever under tie semantics.
        let queries = vec![vec![0.2], vec![0.7], vec![10.2], vec![4.9]];
        let plan = min_cleaning_workload(&data, &truth, &queries, 1);
        // The final state certifies all queries.
        assert_eq!(*plan.certain_curve.last().unwrap(), 1.0);
        // The decisive row is cleaned first.
        assert_eq!(plan.cleaned_rows[0], 4, "{plan:?}");
        // The curve is monotone non-decreasing.
        for w in plan.certain_curve.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "{:?}", plan.certain_curve);
        }
        // Far fewer cleanings than the 3 incomplete rows… or at most all.
        assert!(plan.cleaned_rows.len() <= 3);
    }

    #[test]
    fn workload_cleaning_noop_when_all_certain() {
        let data = dataset(&[(p(0.0), 0), (p(9.0), 1)]);
        let truth = Matrix::from_rows(&[vec![0.0], vec![9.0]]).unwrap();
        let plan = min_cleaning_workload(&data, &truth, &[vec![0.1], vec![8.9]], 1);
        assert!(plan.cleaned_rows.is_empty());
        assert_eq!(plan.certain_curve, vec![1.0]);
    }

    #[test]
    fn cleaning_zero_when_already_certain() {
        let data = dataset(&[(p(0.0), 0), (p(5.0), 1)]);
        let truth = Matrix::from_rows(&[vec![0.0], vec![5.0]]).unwrap();
        assert_eq!(min_cleaning_greedy(&data, &truth, &[0.1], 1), Some(0));
    }
}
