//! Dataset multiplicity for ridge regression (Meyer, Albarghouthi &
//! D'Antoni, "The Dataset Multiplicity Problem", FAccT 2023): when training
//! labels are unreliable, a whole *set* of plausible datasets exists, each
//! yielding a different model. For ridge regression the closed-form
//! solution `w = (XᵀX + λI)⁻¹ Xᵀ y` is **linear in y**, so the exact range
//! of any test prediction over all plausible label vectors is computable in
//! closed form — including under a budget on how many labels may differ.

use nde_learners::matrix::{dot, Matrix};
use nde_learners::{LearnError, Result};

/// Label uncertainty: each training label `yᵢ` may deviate by up to
/// `deltas[i]` (absolute), and at most `budget` labels may deviate at once
/// (`None` = all may deviate).
#[derive(Debug, Clone)]
pub struct LabelUncertainty {
    /// Per-label maximum absolute perturbation.
    pub deltas: Vec<f64>,
    /// Maximum number of simultaneously perturbed labels.
    pub budget: Option<usize>,
}

impl LabelUncertainty {
    /// Uniform uncertainty: every label may move by ±`delta`.
    pub fn uniform(n: usize, delta: f64) -> Self {
        LabelUncertainty {
            deltas: vec![delta.abs(); n],
            budget: None,
        }
    }

    /// Restricts the number of simultaneously perturbed labels.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }
}

/// The multiplicity analysis for one ridge-regression problem.
pub struct RidgeMultiplicity {
    x: Matrix,
    y: Vec<f64>,
    l2: f64,
    gram_inv_xt: Matrix, // (XᵀX + λI)⁻¹ Xᵀ, shape d × n
}

impl RidgeMultiplicity {
    /// Prepares the analysis (inverts the regularized Gram matrix once).
    /// Features are used as-is (append a 1-column for an intercept).
    pub fn new(x: Matrix, y: Vec<f64>, l2: f64) -> Result<Self> {
        if x.nrows() != y.len() {
            return Err(LearnError::DimensionMismatch {
                detail: format!("{} rows vs {} labels", x.nrows(), y.len()),
            });
        }
        let mut gram = x.gram();
        gram.add_ridge(l2.max(1e-10));
        // Solve gram · M = Xᵀ column by column.
        let xt = x.transpose();
        let d = x.ncols();
        let n = x.nrows();
        let mut m = Matrix::zeros(d, n);
        for col in 0..n {
            let rhs: Vec<f64> = (0..d).map(|r| xt.get(r, col)).collect();
            let sol = gram.solve(&rhs)?;
            for (r, &v) in sol.iter().enumerate().take(d) {
                m.set(r, col, v);
            }
        }
        Ok(RidgeMultiplicity {
            x,
            y,
            l2: l2.max(1e-10),
            gram_inv_xt: m,
        })
    }

    /// The nominal model's prediction at `x_test`.
    pub fn nominal_prediction(&self, x_test: &[f64]) -> f64 {
        let c = self.sensitivity(x_test);
        dot(&c, &self.y)
    }

    /// The sensitivity vector `c = X(XᵀX+λI)⁻¹ x_test`: the prediction is
    /// `c·y`, so `c_i` is exactly how much label `i` moves this prediction.
    pub fn sensitivity(&self, x_test: &[f64]) -> Vec<f64> {
        // c_i = Σ_d x_test[d] · M[d][i]
        (0..self.x.nrows())
            .map(|i| {
                (0..self.x.ncols())
                    .map(|d| x_test[d] * self.gram_inv_xt.get(d, i))
                    .sum()
            })
            .collect()
    }

    /// The **exact** range of the prediction at `x_test` over every
    /// plausible label vector: maximize/minimize `c·(y+δ)` with
    /// `|δᵢ| ≤ deltas[i]` and at most `budget` nonzero `δᵢ`.
    pub fn prediction_range(&self, x_test: &[f64], unc: &LabelUncertainty) -> (f64, f64) {
        let c = self.sensitivity(x_test);
        let nominal = dot(&c, &self.y);
        let mut gains: Vec<f64> = c
            .iter()
            .zip(&unc.deltas)
            .map(|(&ci, &di)| ci.abs() * di)
            .collect();
        gains.sort_by(|a, b| b.total_cmp(a));
        let spread: f64 = match unc.budget {
            Some(b) => gains.iter().take(b).sum(),
            None => gains.iter().sum(),
        };
        (nominal - spread, nominal + spread)
    }

    /// Whether the *sign* of the decision `prediction − threshold` is the
    /// same for every plausible dataset — Meyer et al.'s robustness notion
    /// for individual predictions.
    pub fn decision_is_robust(
        &self,
        x_test: &[f64],
        threshold: f64,
        unc: &LabelUncertainty,
    ) -> bool {
        let (lo, hi) = self.prediction_range(x_test, unc);
        lo > threshold || hi < threshold
    }

    /// The regularization used.
    pub fn l2(&self) -> f64 {
        self.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_learners::models::linear::LinearRegression;
    use nde_learners::RegDataset;

    fn line_problem() -> (Matrix, Vec<f64>) {
        // y = x with an intercept column appended.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 1.0]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn nominal_matches_ridge_fit() {
        let (x, y) = line_problem();
        let analysis = RidgeMultiplicity::new(x.clone(), y.clone(), 1e-8).unwrap();
        let trainer = LinearRegression {
            l2: 1e-8,
            fit_intercept: false,
        };
        let model = trainer.fit(&RegDataset::new(x, y).unwrap()).unwrap();
        let probe = [4.5, 1.0];
        assert!((analysis.nominal_prediction(&probe) - model.predict(&probe)).abs() < 1e-6);
    }

    #[test]
    fn range_brackets_perturbed_retraining() {
        let (x, y) = line_problem();
        let delta = 0.5;
        let analysis = RidgeMultiplicity::new(x.clone(), y.clone(), 1e-6).unwrap();
        let unc = LabelUncertainty::uniform(y.len(), delta);
        let probe = [7.0, 1.0];
        let (lo, hi) = analysis.prediction_range(&probe, &unc);
        // Retrain on several perturbed label vectors; predictions must stay
        // inside [lo, hi].
        let trainer = LinearRegression {
            l2: 1e-6,
            fit_intercept: false,
        };
        for pattern in 0..32u32 {
            let perturbed: Vec<f64> = y
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let sign = if pattern >> (i % 5) & 1 == 1 {
                        1.0
                    } else {
                        -1.0
                    };
                    v + sign * delta
                })
                .collect();
            let model = trainer
                .fit(&RegDataset::new(x.clone(), perturbed).unwrap())
                .unwrap();
            let p = model.predict(&probe);
            assert!(p >= lo - 1e-6 && p <= hi + 1e-6, "{p} outside [{lo}, {hi}]");
        }
        assert!(hi > lo);
    }

    #[test]
    fn budget_shrinks_the_range() {
        let (x, y) = line_problem();
        let analysis = RidgeMultiplicity::new(x, y.clone(), 1e-6).unwrap();
        let probe = [3.0, 1.0];
        let all = LabelUncertainty::uniform(y.len(), 1.0);
        let one = LabelUncertainty::uniform(y.len(), 1.0).with_budget(1);
        let (lo_all, hi_all) = analysis.prediction_range(&probe, &all);
        let (lo_one, hi_one) = analysis.prediction_range(&probe, &one);
        assert!(hi_one - lo_one < hi_all - lo_all);
        assert!(lo_all <= lo_one && hi_one <= hi_all);
    }

    #[test]
    fn zero_uncertainty_gives_point_range() {
        let (x, y) = line_problem();
        let analysis = RidgeMultiplicity::new(x, y.clone(), 1e-6).unwrap();
        let unc = LabelUncertainty::uniform(y.len(), 0.0);
        let (lo, hi) = analysis.prediction_range(&[2.0, 1.0], &unc);
        assert!((hi - lo).abs() < 1e-12);
    }

    #[test]
    fn robustness_decision() {
        let (x, y) = line_problem();
        let analysis = RidgeMultiplicity::new(x, y.clone(), 1e-6).unwrap();
        let small = LabelUncertainty::uniform(y.len(), 0.01);
        // Prediction at x=8 is ≈8, far above threshold 1: robust.
        assert!(analysis.decision_is_robust(&[8.0, 1.0], 1.0, &small));
        // Threshold right at the prediction: not robust.
        let nominal = analysis.nominal_prediction(&[8.0, 1.0]);
        assert!(!analysis.decision_is_robust(&[8.0, 1.0], nominal, &small));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (x, _) = line_problem();
        assert!(RidgeMultiplicity::new(x, vec![1.0], 1e-6).is_err());
    }
}
