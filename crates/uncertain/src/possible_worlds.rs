//! Monte-Carlo possible-worlds analysis: sample concrete completions of an
//! incomplete dataset, train one model per world, and summarize how much
//! predictions vary — the sampling counterpart to Zorro's symbolic bounds
//! (and the "possible worlds framework" of the survey's §2.3).

use crate::incomplete::IncompleteMatrix;
use nde_learners::dataset::ClassDataset;
use nde_learners::traits::{Learner, Model};
use nde_learners::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Summary of an ensemble of possible-world models at one test point.
#[derive(Debug, Clone)]
pub struct WorldPrediction {
    /// Labels predicted across worlds, as counts per class.
    pub votes: Vec<usize>,
    /// The majority label.
    pub label: usize,
    /// Fraction of worlds agreeing with the majority — 1.0 means the
    /// prediction is empirically certain.
    pub agreement: f64,
}

/// A possible-worlds classifier ensemble.
pub struct PossibleWorldsEnsemble {
    models: Vec<Box<dyn Model>>,
    n_classes: usize,
}

impl PossibleWorldsEnsemble {
    /// Trains `n_worlds` models, each on an independent uniform completion
    /// of the incomplete features.
    pub fn train(
        learner: &dyn Learner,
        x: &IncompleteMatrix,
        y: &[usize],
        n_classes: usize,
        n_worlds: usize,
        seed: u64,
    ) -> Result<Self> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut models = Vec::with_capacity(n_worlds.max(1));
        for _ in 0..n_worlds.max(1) {
            let picks: Vec<f64> = (0..x.nrows() * x.ncols()).map(|_| rng.random()).collect();
            let ncols = x.ncols();
            let world = x.world(&|i, j| picks[i * ncols + j]);
            let data = ClassDataset::new(world, y.to_vec(), n_classes)?;
            models.push(learner.fit(&data)?);
        }
        Ok(PossibleWorldsEnsemble { models, n_classes })
    }

    /// Number of worlds.
    pub fn n_worlds(&self) -> usize {
        self.models.len()
    }

    /// Prediction summary at one test point.
    pub fn predict(&self, x: &[f64]) -> WorldPrediction {
        let mut votes = vec![0usize; self.n_classes];
        for m in &self.models {
            votes[m.predict(x)] += 1;
        }
        let label = votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(l, _)| l)
            .unwrap_or(0);
        let agreement = votes[label] as f64 / self.models.len().max(1) as f64;
        WorldPrediction {
            votes,
            label,
            agreement,
        }
    }

    /// Fraction of `queries` on which all worlds agree (empirical certain-
    /// prediction rate; an *upper* bound on the true certain fraction,
    /// since sampling can miss adversarial worlds).
    pub fn empirical_certain_fraction(&self, queries: &[Vec<f64>]) -> f64 {
        if queries.is_empty() {
            return 0.0;
        }
        let certain = queries
            .iter()
            .filter(|q| (self.predict(q).agreement - 1.0).abs() < 1e-12)
            .count();
        certain as f64 / queries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use nde_learners::models::knn::KnnClassifier;
    use nde_learners::Matrix;

    fn incomplete_blobs() -> (IncompleteMatrix, Vec<usize>) {
        let x = Matrix::from_rows(&[
            vec![0.0],
            vec![0.3],
            vec![5.0],
            vec![5.3],
            vec![2.0], // this row's value is wildly uncertain
        ])
        .unwrap();
        let mut im = IncompleteMatrix::from_exact(&x);
        im.set_missing(4, 0, Interval::new(0.0, 6.0));
        (im, vec![0, 0, 1, 1, 1])
    }

    #[test]
    fn stable_regions_agree_across_worlds() {
        let (im, y) = incomplete_blobs();
        let learner = KnnClassifier::new(3);
        let ensemble = PossibleWorldsEnsemble::train(&learner, &im, &y, 2, 25, 7).unwrap();
        assert_eq!(ensemble.n_worlds(), 25);
        let p = ensemble.predict(&[5.2]);
        assert_eq!(p.label, 1);
        assert_eq!(p.agreement, 1.0);
    }

    #[test]
    fn uncertain_regions_disagree() {
        let (im, y) = incomplete_blobs();
        let learner = KnnClassifier::new(1);
        let ensemble = PossibleWorldsEnsemble::train(&learner, &im, &y, 2, 40, 3).unwrap();
        // Right between the blobs, the uncertain row decides the 1-NN label.
        let p = ensemble.predict(&[2.5]);
        assert!(p.agreement < 1.0, "agreement {}", p.agreement);
        assert_eq!(p.votes.iter().sum::<usize>(), 40);
    }

    #[test]
    fn empirical_certain_fraction_behaviour() {
        let (im, y) = incomplete_blobs();
        let learner = KnnClassifier::new(1);
        let ensemble = PossibleWorldsEnsemble::train(&learner, &im, &y, 2, 30, 1).unwrap();
        let queries = vec![vec![0.1], vec![5.1], vec![2.5]];
        let f = ensemble.empirical_certain_fraction(&queries);
        assert!((1.0 / 3.0..=1.0).contains(&f));
        assert_eq!(ensemble.empirical_certain_fraction(&[]), 0.0);
    }

    #[test]
    fn deterministic_by_seed() {
        let (im, y) = incomplete_blobs();
        let learner = KnnClassifier::new(1);
        let a = PossibleWorldsEnsemble::train(&learner, &im, &y, 2, 10, 9).unwrap();
        let b = PossibleWorldsEnsemble::train(&learner, &im, &y, 2, 10, 9).unwrap();
        assert_eq!(a.predict(&[2.5]).votes, b.predict(&[2.5]).votes);
    }
}
