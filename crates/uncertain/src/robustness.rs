//! Certified robustness to training-data poisoning via disjoint-partition
//! bagging (Jia, Cao & Gong, AAAI 2021; related to randomized smoothing
//! against label flips, Rosenfeld et al. 2020).
//!
//! With the training set hash-partitioned into `m` disjoint folds and one
//! base model per fold, modifying (poisoning, flipping, inserting or
//! deleting) `r` training examples can change at most `r` of the `m` votes.
//! If the vote margin between the top class and the runner-up exceeds `2r`
//! (with tie-breaking accounted for), the ensemble's prediction is
//! **certified** unchanged for every attack of size `r`.

use nde_learners::models::bagging::FittedBagging;

/// The certification for one test input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The predicted class.
    pub label: usize,
    /// The certified radius: the prediction provably survives any
    /// modification of up to this many training examples.
    pub radius: usize,
}

/// Certifies one prediction of a *disjoint-partition* ensemble.
///
/// With votes `v₁ ≥ v₂` for the top class `c₁` and runner-up `c₂`, an
/// attacker flipping `r` examples moves at most `r` votes, so the worst
/// case is `v₁ − r` vs `v₂ + r`. The prediction survives while
/// `v₁ − r > v₂ + r`, or at equality when `c₁` wins the tie (lower class
/// index under this crate's argmax convention).
pub fn certify(ensemble: &FittedBagging, x: &[f64]) -> Certificate {
    let votes = ensemble.votes(x);
    let (c1, v1) = top_class(&votes, None);
    let (c2, v2) = top_class(&votes, Some(c1));
    let gap = v1 - v2;
    let radius = if c1 < c2 {
        gap / 2 // c1 wins ties: need v1 - r >= v2 + r
    } else {
        gap.saturating_sub(1) / 2 // must stay strictly ahead
    };
    Certificate { label: c1, radius }
}

/// Certified accuracy at attack size `r`: the fraction of test points that
/// are both correctly classified *and* certified robust at radius ≥ `r` —
/// the curve reported in the certified-defense literature.
pub fn certified_accuracy(
    ensemble: &FittedBagging,
    x_test: &nde_learners::Matrix,
    y_test: &[usize],
    r: usize,
) -> f64 {
    if y_test.is_empty() {
        return 0.0;
    }
    let good = (0..x_test.nrows())
        .filter(|&i| {
            let cert = certify(ensemble, x_test.row(i));
            cert.label == y_test[i] && cert.radius >= r
        })
        .count();
    good as f64 / y_test.len() as f64
}

fn top_class(votes: &[usize], exclude: Option<usize>) -> (usize, usize) {
    let mut best = (0usize, 0usize);
    let mut found = false;
    for (c, &v) in votes.iter().enumerate() {
        if Some(c) == exclude {
            continue;
        }
        if !found || v > best.1 {
            best = (c, v);
            found = true;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_learners::dataset::ClassDataset;
    use nde_learners::models::bagging::BaggingClassifier;
    use nde_learners::models::knn::KnnClassifier;
    use nde_learners::Matrix;
    use std::sync::Arc;

    fn blobs(n_per: usize) -> ClassDataset {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n_per {
            let j = (i % 7) as f64 * 0.05;
            rows.push(vec![j]);
            y.push(0);
            rows.push(vec![4.0 + j]);
            y.push(1);
        }
        ClassDataset::new(Matrix::from_rows(&rows).unwrap(), y, 2).unwrap()
    }

    #[test]
    fn unanimous_vote_gives_maximal_radius() {
        let data = blobs(30);
        let bag = BaggingClassifier::partitioned(Arc::new(KnnClassifier::new(1)), 9);
        let ensemble = bag.fit_ensemble(&data).unwrap();
        let cert = certify(&ensemble, &[0.1]);
        assert_eq!(cert.label, 0);
        // 9 vs 0 votes, class 0 wins ties: radius = 4 (9-2·4 = 1 > 0… 9-4=5 vs 0+4=4).
        assert_eq!(cert.radius, 4);
        let cert1 = certify(&ensemble, &[4.1]);
        assert_eq!(cert1.label, 1);
        // Class 1 loses ties to class 0: radius = (9-0-1)/2 = 4.
        assert_eq!(cert1.radius, 4);
    }

    #[test]
    fn certificate_soundness_under_actual_label_flips() {
        // Flip r training labels adversarially (the ones in the predicted
        // class's partition folds) and confirm the prediction survives
        // whenever r ≤ certified radius.
        let data = blobs(30);
        let m = 7;
        let bag = BaggingClassifier::partitioned(Arc::new(KnnClassifier::new(1)), m);
        let ensemble = bag.fit_ensemble(&data).unwrap();
        let query = [0.1];
        let cert = certify(&ensemble, &query);
        // Attack: flip all labels in the first `cert.radius` partitions.
        let mut attacked = data.clone();
        for part in 0..cert.radius {
            for i in (0..attacked.len()).filter(|i| i % m == part) {
                attacked.y[i] = 1 - attacked.y[i];
            }
        }
        let attacked_ensemble = bag.fit_ensemble(&attacked).unwrap();
        use nde_learners::traits::Model;
        assert_eq!(attacked_ensemble.predict(&query), cert.label);
    }

    #[test]
    fn certified_accuracy_decreases_with_radius() {
        let data = blobs(40);
        let bag = BaggingClassifier::partitioned(Arc::new(KnnClassifier::new(1)), 11);
        let ensemble = bag.fit_ensemble(&data).unwrap();
        let x_test = Matrix::from_rows(&[vec![0.2], vec![4.2], vec![0.05], vec![4.3]]).unwrap();
        let y_test = vec![0, 1, 0, 1];
        let a0 = certified_accuracy(&ensemble, &x_test, &y_test, 0);
        let a3 = certified_accuracy(&ensemble, &x_test, &y_test, 3);
        let a6 = certified_accuracy(&ensemble, &x_test, &y_test, 6);
        assert_eq!(a0, 1.0);
        assert!(a3 >= a6);
        assert_eq!(a6, 0.0); // radius can never reach 6 with 11 partitions… (11-1)/2 = 5
    }

    #[test]
    fn empty_test_set() {
        let data = blobs(5);
        let bag = BaggingClassifier::partitioned(Arc::new(KnnClassifier::new(1)), 3);
        let ensemble = bag.fit_ensemble(&data).unwrap();
        let x = Matrix::zeros(0, 1);
        assert_eq!(certified_accuracy(&ensemble, &x, &[], 0), 0.0);
    }
}
