//! Closed interval arithmetic — the baseline abstract domain for
//! propagating missing-value uncertainty.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A closed interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Creates `[lo, hi]`; swaps the endpoints if given in reverse.
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Midpoint.
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Half-width (radius).
    pub fn radius(&self) -> f64 {
        0.5 * (self.hi - self.lo)
    }

    /// Width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `v` lies inside (inclusive).
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether `other` lies inside (inclusive).
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// The smallest interval containing both.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Scales by a scalar (flips bounds for negative scalars).
    pub fn scale(&self, s: f64) -> Interval {
        Interval::new(self.lo * s, self.hi * s)
    }

    /// Largest absolute value in the interval.
    pub fn abs_max(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// The square `{x² : x ∈ self}` (tight, not the naive product).
    pub fn square(&self) -> Interval {
        if self.contains(0.0) {
            Interval {
                lo: 0.0,
                hi: self.abs_max().powi(2),
            }
        } else {
            let a = self.lo * self.lo;
            let b = self.hi * self.hi;
            Interval::new(a.min(b), a.max(b))
        }
    }
}

impl Add for Interval {
    type Output = Interval;

    fn add(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo + rhs.lo,
            hi: self.hi + rhs.hi,
        }
    }
}

impl Sub for Interval {
    type Output = Interval;

    fn sub(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo - rhs.hi,
            hi: self.hi - rhs.lo,
        }
    }
}

impl Neg for Interval {
    type Output = Interval;

    fn neg(self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

impl Mul for Interval {
    type Output = Interval;

    fn mul(self, rhs: Interval) -> Interval {
        let products = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        Interval {
            lo: products.iter().copied().fold(f64::INFINITY, f64::min),
            hi: products.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        assert_eq!(Interval::new(3.0, 1.0), Interval::new(1.0, 3.0));
        let p = Interval::point(2.0);
        assert_eq!(p.width(), 0.0);
        assert_eq!(p.mid(), 2.0);
    }

    #[test]
    fn arithmetic_soundness_spot_checks() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(-1.0, 3.0);
        let sum = a + b;
        assert_eq!(sum, Interval::new(0.0, 5.0));
        let diff = a - b;
        assert_eq!(diff, Interval::new(-2.0, 3.0));
        let prod = a * b;
        assert_eq!(prod, Interval::new(-2.0, 6.0));
        assert_eq!(-a, Interval::new(-2.0, -1.0));
    }

    #[test]
    fn containment_and_hull() {
        let a = Interval::new(0.0, 1.0);
        assert!(a.contains(0.5));
        assert!(a.contains(1.0));
        assert!(!a.contains(1.01));
        let h = a.hull(&Interval::new(2.0, 3.0));
        assert_eq!(h, Interval::new(0.0, 3.0));
        assert!(h.contains_interval(&a));
    }

    #[test]
    fn square_is_tight() {
        assert_eq!(Interval::new(-2.0, 1.0).square(), Interval::new(0.0, 4.0));
        assert_eq!(Interval::new(1.0, 2.0).square(), Interval::new(1.0, 4.0));
        assert_eq!(Interval::new(-3.0, -2.0).square(), Interval::new(4.0, 9.0));
    }

    #[test]
    fn scale_flips_on_negative() {
        assert_eq!(
            Interval::new(1.0, 2.0).scale(-2.0),
            Interval::new(-4.0, -2.0)
        );
    }

    #[test]
    fn abs_max() {
        assert_eq!(Interval::new(-5.0, 2.0).abs_max(), 5.0);
        assert_eq!(Interval::new(1.0, 4.0).abs_max(), 4.0);
    }
}
