#![deny(missing_docs)]
//! # nde-uncertain
//!
//! Pillar 3 of the tutorial — **Learn from uncertain and incomplete data**
//! (§2.3 of the paper): when cleaning is too costly or impossible, provide
//! principled guarantees *despite* the errors.
//!
//! - [`interval`] / [`affine`] — the abstract domains (intervals and
//!   zonotopes/affine forms) that uncertainty is propagated in,
//! - [`incomplete`] — datasets with missing cells bounded by ranges,
//! - [`zorro`] — Zorro-style symbolic gradient descent (Zhu, Feng, Glavic &
//!   Salimi, NeurIPS 2024): train a linear model over *all possible worlds*
//!   at once and bound worst-case loss and prediction ranges,
//! - [`cpclean`] — certain predictions for k-NN over incomplete data
//!   (Karlaš et al., VLDB 2020) and minimal-cleaning analysis,
//! - [`multiplicity`] — dataset-multiplicity prediction ranges for ridge
//!   regression under label uncertainty (Meyer, Albarghouthi & D'Antoni,
//!   FAccT 2023), computed exactly via the closed form's linearity in `y`,
//! - [`possible_worlds`] — Monte-Carlo possible-worlds ensembles,
//! - [`robustness`] — certified robustness to training-data poisoning via
//!   disjoint-partition bagging (Jia et al., AAAI 2021),
//! - [`cra`] — consistent range approximation for fairness metrics under
//!   dirty protected-group attributes (Zhu et al., VLDB 2023).

pub mod affine;
pub mod certain_models;
pub mod cpclean;
pub mod cra;
pub mod incomplete;
pub mod interval;
pub mod multiplicity;
pub mod possible_worlds;
pub mod robustness;
pub mod zorro;

pub use affine::AffineForm;
pub use incomplete::IncompleteMatrix;
pub use interval::Interval;
