//! Consistent range approximation for fair predictive modeling (Zhu,
//! Galhotra, Sabri & Salimi, VLDB 2023): when the protected-group
//! attribute itself is dirty — missing for some individuals, or possibly
//! wrong for a bounded number of them — a fairness metric has no single
//! value, only a **range over all consistent completions**. A model is
//! *certifiably fair* when even the worst completion satisfies the
//! threshold.
//!
//! For group-count-based metrics (demographic parity here) the exact range
//! is computable by counting: each unknown-group individual contributes
//! its prediction to one group or the other, and the extremes are reached
//! at greedy assignments.

/// A test-set row for the fairness-range analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupObservation {
    /// The model's binary prediction for this individual.
    pub predicted_positive: bool,
    /// The protected-group membership, if known (`None` = missing).
    pub group: Option<usize>,
}

/// The exact range of the demographic-parity gap
/// `|P(ŷ=1 | g=0) − P(ŷ=1 | g=1)|` over all completions of the missing
/// group attributes (binary groups). Returns `(lo, hi)`.
///
/// Individuals with unknown group can be assigned to either side; the
/// extremes are found by scanning the number `a` of unknown-positive and
/// `b` of unknown-negative individuals routed to group 0 (the metric is
/// monotone in each count given the other, so the O(u²) scan over the two
/// counts is exact and cheap for realistic missingness).
pub fn demographic_parity_range(observations: &[GroupObservation]) -> (f64, f64) {
    let mut pos = [0usize; 2];
    let mut n = [0usize; 2];
    let (mut unk_pos, mut unk_neg) = (0usize, 0usize);
    for obs in observations {
        match obs.group {
            Some(g) if g < 2 => {
                n[g] += 1;
                pos[g] += usize::from(obs.predicted_positive);
            }
            Some(_) => {} // non-binary group values are out of scope
            None => {
                if obs.predicted_positive {
                    unk_pos += 1;
                } else {
                    unk_neg += 1;
                }
            }
        }
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for a in 0..=unk_pos {
        for b in 0..=unk_neg {
            // a unknown-positives and b unknown-negatives join group 0;
            // the rest join group 1.
            let n0 = n[0] + a + b;
            let n1 = n[1] + (unk_pos - a) + (unk_neg - b);
            let p0 = pos[0] + a;
            let p1 = pos[1] + (unk_pos - a);
            let rate = |p: usize, n: usize| if n == 0 { 0.0 } else { p as f64 / n as f64 };
            let gap = (rate(p0, n0) - rate(p1, n1)).abs();
            lo = lo.min(gap);
            hi = hi.max(gap);
        }
    }
    if lo.is_infinite() {
        (0.0, 0.0)
    } else {
        (lo, hi)
    }
}

/// Certifies that the demographic-parity gap stays at or below `threshold`
/// in **every** consistent completion of the missing group attributes.
pub fn certifiably_fair(observations: &[GroupObservation], threshold: f64) -> bool {
    demographic_parity_range(observations).1 <= threshold
}

/// The range of the *positive rate* of one group when up to `budget` of
/// the known group labels may be wrong (the "programmable bias" flavor):
/// an adversary flips at most `budget` group memberships to move the rate.
pub fn positive_rate_range_under_flips(
    observations: &[GroupObservation],
    group: usize,
    budget: usize,
) -> (f64, f64) {
    let mut in_pos = 0usize; // group members predicted positive
    let mut in_neg = 0usize;
    let mut out_pos = 0usize; // non-members predicted positive
    let mut out_neg = 0usize;
    for obs in observations {
        match (obs.group == Some(group), obs.predicted_positive) {
            (true, true) => in_pos += 1,
            (true, false) => in_neg += 1,
            (false, true) => out_pos += 1,
            (false, false) => out_neg += 1,
        }
    }
    let rate = |p: usize, n: usize| if n == 0 { 0.0 } else { p as f64 / (n as f64) };

    // Maximize: pull in positives from outside and push out negatives.
    let mut best_hi = rate(in_pos, in_pos + in_neg);
    // Minimize: pull in negatives and push out positives.
    let mut best_lo = best_hi;
    for pull in 0..=budget {
        for push in 0..=(budget - pull) {
            let p_in = pull.min(out_pos);
            let n_out = push.min(in_neg);
            let hi = rate(in_pos + p_in, in_pos + p_in + in_neg - n_out);
            best_hi = best_hi.max(hi);
            let n_in = pull.min(out_neg);
            let p_out = push.min(in_pos);
            let lo = rate(in_pos - p_out, in_pos - p_out + in_neg + n_in);
            best_lo = best_lo.min(lo);
        }
    }
    (best_lo, best_hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(pred: bool, group: Option<usize>) -> GroupObservation {
        GroupObservation {
            predicted_positive: pred,
            group,
        }
    }

    #[test]
    fn fully_observed_range_is_a_point() {
        let data = vec![
            obs(true, Some(0)),
            obs(false, Some(0)),
            obs(true, Some(1)),
            obs(true, Some(1)),
        ];
        let (lo, hi) = demographic_parity_range(&data);
        assert_eq!(lo, hi);
        assert!((hi - 0.5).abs() < 1e-12); // |0.5 − 1.0|
    }

    #[test]
    fn missing_groups_widen_the_range() {
        let mut data = vec![
            obs(true, Some(0)),
            obs(false, Some(0)),
            obs(true, Some(1)),
            obs(false, Some(1)),
        ];
        let (lo0, hi0) = demographic_parity_range(&data);
        data.push(obs(true, None));
        data.push(obs(false, None));
        let (lo1, hi1) = demographic_parity_range(&data);
        assert!(lo1 <= lo0 && hi1 >= hi0, "({lo1},{hi1}) vs ({lo0},{hi0})");
        assert!(hi1 > lo1);
    }

    #[test]
    fn range_brackets_enumerated_completions() {
        // 3 unknowns: enumerate all 2³ assignments and compare.
        let base = vec![obs(true, Some(0)), obs(true, Some(1)), obs(false, Some(1))];
        let unknowns = [obs(true, None), obs(false, None), obs(true, None)];
        let mut data = base.clone();
        data.extend_from_slice(&unknowns);
        let (lo, hi) = demographic_parity_range(&data);

        let mut seen_lo = f64::INFINITY;
        let mut seen_hi = f64::NEG_INFINITY;
        for mask in 0..8u32 {
            let mut world = base.clone();
            for (i, u) in unknowns.iter().enumerate() {
                let g = usize::from(mask >> i & 1 == 1);
                world.push(obs(u.predicted_positive, Some(g)));
            }
            let (plo, phi) = demographic_parity_range(&world);
            assert_eq!(plo, phi);
            seen_lo = seen_lo.min(plo);
            seen_hi = seen_hi.max(phi);
        }
        assert!(
            (lo - seen_lo).abs() < 1e-12,
            "lo {lo} vs enumerated {seen_lo}"
        );
        assert!(
            (hi - seen_hi).abs() < 1e-12,
            "hi {hi} vs enumerated {seen_hi}"
        );
    }

    #[test]
    fn certification() {
        let data = vec![
            obs(true, Some(0)),
            obs(true, Some(1)),
            obs(true, None), // whichever group it joins, rates stay equal-ish
        ];
        assert!(certifiably_fair(&data, 0.5));
        let skewed = vec![
            obs(true, Some(0)),
            obs(true, Some(0)),
            obs(false, Some(1)),
            obs(false, None),
        ];
        assert!(!certifiably_fair(&skewed, 0.3));
    }

    #[test]
    fn empty_input() {
        assert_eq!(demographic_parity_range(&[]), (0.0, 0.0));
        assert!(certifiably_fair(&[], 0.0));
    }

    #[test]
    fn flip_budget_zero_is_a_point() {
        let data = vec![obs(true, Some(0)), obs(false, Some(0)), obs(true, Some(1))];
        let (lo, hi) = positive_rate_range_under_flips(&data, 0, 0);
        assert_eq!(lo, hi);
        assert!((hi - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flip_budget_widens_monotonically() {
        let data: Vec<GroupObservation> = (0..20)
            .map(|i| obs(i % 3 == 0, Some(usize::from(i % 2 == 0))))
            .collect();
        let mut prev = positive_rate_range_under_flips(&data, 0, 0);
        for budget in 1..5 {
            let cur = positive_rate_range_under_flips(&data, 0, budget);
            assert!(
                cur.0 <= prev.0 + 1e-12 && cur.1 >= prev.1 - 1e-12,
                "{cur:?} vs {prev:?}"
            );
            prev = cur;
        }
        assert!(prev.1 > prev.0);
    }
}
