//! Incomplete feature matrices: known cells plus missing cells bounded by
//! intervals — the input representation shared by Zorro, CPClean and the
//! certain-model analyses.

use crate::interval::Interval;
use nde_learners::{LearnError, Matrix, Result};

/// A feature matrix in which some cells are unknown but bounded.
#[derive(Debug, Clone)]
pub struct IncompleteMatrix {
    /// Cell bounds: known cells are point intervals.
    cells: Vec<Interval>,
    rows: usize,
    cols: usize,
}

impl IncompleteMatrix {
    /// A fully known matrix.
    pub fn from_exact(m: &Matrix) -> Self {
        IncompleteMatrix {
            cells: m.data().iter().map(|&v| Interval::point(v)).collect(),
            rows: m.nrows(),
            cols: m.ncols(),
        }
    }

    /// Builds from per-cell intervals (row-major).
    pub fn from_intervals(rows: usize, cols: usize, cells: Vec<Interval>) -> Result<Self> {
        if cells.len() != rows * cols {
            return Err(LearnError::DimensionMismatch {
                detail: format!(
                    "{rows}x{cols} matrix needs {} cells, got {}",
                    rows * cols,
                    cells.len()
                ),
            });
        }
        Ok(IncompleteMatrix { cells, rows, cols })
    }

    /// Marks cell (`i`, `j`) as missing with bounds `[lo, hi]`.
    pub fn set_missing(&mut self, i: usize, j: usize, bounds: Interval) {
        self.cells[i * self.cols + j] = bounds;
    }

    /// The bounds of cell (`i`, `j`).
    pub fn get(&self, i: usize, j: usize) -> Interval {
        self.cells[i * self.cols + j]
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice of intervals.
    pub fn row(&self, i: usize) -> &[Interval] {
        &self.cells[i * self.cols..(i + 1) * self.cols]
    }

    /// Indices of rows containing at least one non-point cell.
    pub fn incomplete_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .filter(|&i| self.row(i).iter().any(|c| c.width() > 0.0))
            .collect()
    }

    /// Number of missing (non-point) cells.
    pub fn n_missing(&self) -> usize {
        self.cells.iter().filter(|c| c.width() > 0.0).count()
    }

    /// The world where every missing cell takes its midpoint — the
    /// mean-imputation baseline.
    pub fn midpoint_world(&self) -> Matrix {
        let data: Vec<f64> = self.cells.iter().map(Interval::mid).collect();
        Matrix::new(self.rows, self.cols, data).expect("shape preserved")
    }

    /// A concrete possible world: missing cell (`i`,`j`) takes
    /// `lo + u·width` where `u = pick(i, j) ∈ [0,1]`.
    pub fn world(&self, pick: &dyn Fn(usize, usize) -> f64) -> Matrix {
        let mut data = Vec::with_capacity(self.cells.len());
        for i in 0..self.rows {
            for j in 0..self.cols {
                let c = self.get(i, j);
                let u = pick(i, j).clamp(0.0, 1.0);
                data.push(c.lo + u * c.width());
            }
        }
        Matrix::new(self.rows, self.cols, data).expect("shape preserved")
    }

    /// Whether `m` is a possible world (every cell within its bounds,
    /// up to `tol`).
    pub fn contains_world(&self, m: &Matrix, tol: f64) -> bool {
        if m.nrows() != self.rows || m.ncols() != self.cols {
            return false;
        }
        self.cells
            .iter()
            .zip(m.data())
            .all(|(c, &v)| v >= c.lo - tol && v <= c.hi + tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> IncompleteMatrix {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let mut im = IncompleteMatrix::from_exact(&m);
        im.set_missing(0, 1, Interval::new(0.0, 10.0));
        im
    }

    #[test]
    fn exact_matrix_has_no_missing_cells() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let im = IncompleteMatrix::from_exact(&m);
        assert_eq!(im.n_missing(), 0);
        assert!(im.incomplete_rows().is_empty());
        assert_eq!(im.midpoint_world(), m);
    }

    #[test]
    fn missing_cells_tracked() {
        let im = demo();
        assert_eq!(im.n_missing(), 1);
        assert_eq!(im.incomplete_rows(), vec![0]);
        assert_eq!(im.get(0, 1), Interval::new(0.0, 10.0));
        assert_eq!(im.get(1, 0), Interval::point(3.0));
    }

    #[test]
    fn worlds_respect_bounds() {
        let im = demo();
        let w0 = im.world(&|_, _| 0.0);
        assert_eq!(w0.get(0, 1), 0.0);
        let w1 = im.world(&|_, _| 1.0);
        assert_eq!(w1.get(0, 1), 10.0);
        let mid = im.midpoint_world();
        assert_eq!(mid.get(0, 1), 5.0);
        assert!(im.contains_world(&w0, 0.0));
        assert!(im.contains_world(&w1, 0.0));
        // Out-of-bounds world rejected.
        let mut bad = w1.clone();
        bad.set(0, 1, 11.0);
        assert!(!im.contains_world(&bad, 1e-9));
    }

    #[test]
    fn from_intervals_validates_shape() {
        assert!(IncompleteMatrix::from_intervals(2, 2, vec![Interval::point(0.0); 3]).is_err());
        let im = IncompleteMatrix::from_intervals(
            1,
            2,
            vec![Interval::point(0.0), Interval::new(0.0, 1.0)],
        )
        .unwrap();
        assert_eq!(im.n_missing(), 1);
    }
}
