//! Zorro-style symbolic learning (Zhu, Feng, Glavic & Salimi, "Learning
//! from Uncertain Data: From Possible Worlds to Possible Models", NeurIPS
//! 2024): train a linear model by gradient descent where every missing
//! feature cell is a *symbolic* value ranging over its bounds. The trained
//! weights are zonotopes that simultaneously over-approximate the weights
//! of **every possible world**, yielding sound prediction ranges and a
//! worst-case-loss bound (the quantity plotted in the paper's Figure 4).

use crate::affine::{AffineForm, SymbolPool};
use crate::incomplete::IncompleteMatrix;
use crate::interval::Interval;
use nde_learners::dataset::RegDataset;
use nde_learners::Matrix;

/// The abstract domain symbolic training runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Plain interval arithmetic: cheap, but forgets correlations (the
    /// same missing cell on both sides of a product decorrelates).
    Interval,
    /// Affine forms / zonotopes: tracks correlations through training —
    /// the domain Zorro actually uses.
    Zonotope,
}

/// Hyperparameters of symbolic gradient descent. These must match the
/// concrete training run being over-approximated.
#[derive(Debug, Clone)]
pub struct ZorroConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// Full-batch epochs.
    pub epochs: usize,
    /// L2 regularization on weights (not the intercept).
    pub l2: f64,
    /// Zonotope mode: maximum noise symbols kept per weight between epochs
    /// (excess folded soundly into a fresh symbol).
    pub max_symbols: usize,
    /// Abstract domain.
    pub domain: Domain,
}

impl Default for ZorroConfig {
    fn default() -> Self {
        ZorroConfig {
            learning_rate: 0.05,
            epochs: 40,
            l2: 0.01,
            max_symbols: 120,
            domain: Domain::Zonotope,
        }
    }
}

/// A symbolically trained linear model: every parameter is an affine form
/// covering its value in all possible worlds.
#[derive(Debug, Clone)]
pub struct SymbolicLinear {
    /// Weight forms, one per feature.
    pub weights: Vec<AffineForm>,
    /// Intercept form.
    pub intercept: AffineForm,
}

impl SymbolicLinear {
    /// The guaranteed prediction range for a (fully known) feature vector.
    pub fn prediction_range(&self, x: &[f64]) -> Interval {
        let mut acc = self.intercept.clone();
        for (w, &xi) in self.weights.iter().zip(x) {
            acc = acc.add(&w.scale(xi));
        }
        acc.to_interval()
    }

    /// Sound upper bound on the squared error at one labelled test point.
    pub fn worst_case_squared_error(&self, x: &[f64], y: f64) -> f64 {
        let residual = self.prediction_range(x) - Interval::point(y);
        residual.square().hi
    }

    /// Sound upper bound on the MSE over a test set — the "maximum
    /// worst-case loss" of the paper's Figure 4.
    pub fn worst_case_mse(&self, test: &RegDataset) -> f64 {
        if test.is_empty() {
            return 0.0;
        }
        let total: f64 = (0..test.len())
            .map(|i| self.worst_case_squared_error(test.x.row(i), test.y[i]))
            .sum();
        total / test.len() as f64
    }

    /// The guaranteed range of `σ(w·x + b)` — prediction ranges on the
    /// probability scale for classification-style use. Sound because the
    /// sigmoid is monotone, so the image of an interval is the interval of
    /// the images.
    pub fn sigmoid_prediction_range(&self, x: &[f64]) -> Interval {
        let raw = self.prediction_range(x);
        let sigmoid = |z: f64| 1.0 / (1.0 + (-z).exp());
        Interval::new(sigmoid(raw.lo), sigmoid(raw.hi))
    }

    /// Whether the thresholded classification `σ(w·x+b) ≥ 0.5` is the same
    /// in every possible world (`Some(label)`) or undetermined (`None`).
    pub fn certified_class(&self, x: &[f64]) -> Option<bool> {
        let range = self.sigmoid_prediction_range(x);
        if range.lo >= 0.5 {
            Some(true)
        } else if range.hi < 0.5 {
            Some(false)
        } else {
            None
        }
    }

    /// Width of the widest weight range (a precision diagnostic).
    pub fn max_weight_width(&self) -> f64 {
        self.weights
            .iter()
            .map(|w| w.to_interval().width())
            .fold(0.0, f64::max)
    }
}

/// Trains a linear model symbolically over the incomplete training matrix.
/// The result over-approximates, for **every** possible world `X*` of `x`,
/// the model produced by concrete full-batch gradient descent on `(X*, y)`
/// with the same hyperparameters (see [`train_concrete`]).
///
/// ```
/// use nde_learners::Matrix;
/// use nde_uncertain::incomplete::IncompleteMatrix;
/// use nde_uncertain::interval::Interval;
/// use nde_uncertain::zorro::{train_concrete, train_symbolic, ZorroConfig};
///
/// let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
/// let y = vec![0.0, 1.0, 2.0, 3.0];
/// let mut incomplete = IncompleteMatrix::from_exact(&x);
/// incomplete.set_missing(1, 0, Interval::new(0.5, 1.5)); // cell is unknown
///
/// let cfg = ZorroConfig::default();
/// let model = train_symbolic(&incomplete, &y, &cfg);
/// // The symbolic weight range contains the concrete GD weight of any
/// // possible world — here, the midpoint world.
/// let (w, _) = train_concrete(&incomplete.midpoint_world(), &y, &cfg);
/// assert!(model.weights[0].to_interval().contains(w[0]));
/// ```
pub fn train_symbolic(x: &IncompleteMatrix, y: &[f64], cfg: &ZorroConfig) -> SymbolicLinear {
    let bounds: Vec<Interval> = y.iter().map(|&v| Interval::point(v)).collect();
    train_symbolic_uncertain_labels(x, &bounds, cfg)
}

/// The full Zorro setting of the paper's Figure 4 narrative: *both* missing
/// attributes and **uncertain labels**. Every label is an interval; a
/// possible world picks one value per missing cell and one label per
/// interval, and the symbolic weights cover the GD outcome of every such
/// world (each uncertain label gets its own shared noise symbol, so its
/// appearances across epochs stay correlated).
pub fn train_symbolic_uncertain_labels(
    x: &IncompleteMatrix,
    y: &[Interval],
    cfg: &ZorroConfig,
) -> SymbolicLinear {
    let pool = SymbolPool::new();
    let (n, d) = (x.nrows(), x.ncols());
    // One shared symbol per missing cell, fixed across all epochs.
    let cells: Vec<AffineForm> = (0..n)
        .flat_map(|i| (0..d).map(move |j| (i, j)))
        .map(|(i, j)| {
            let iv = x.get(i, j);
            if iv.width() > 0.0 && cfg.domain == Domain::Zonotope {
                AffineForm::from_interval(iv, &pool)
            } else if iv.width() > 0.0 {
                // Interval mode models the cell as an independent symbol at
                // every *use*, implemented by re-widening below.
                AffineForm::from_interval(iv, &pool)
            } else {
                AffineForm::constant(iv.mid())
            }
        })
        .collect();
    let cell = |i: usize, j: usize| &cells[i * d + j];

    // One shared symbol per uncertain label as well.
    let y_forms: Vec<AffineForm> = y
        .iter()
        .map(|&iv| {
            if iv.width() > 0.0 {
                AffineForm::from_interval(iv, &pool)
            } else {
                AffineForm::constant(iv.mid())
            }
        })
        .collect();

    let mut w: Vec<AffineForm> = vec![AffineForm::constant(0.0); d];
    let mut b = AffineForm::constant(0.0);
    let inv_n = 1.0 / n.max(1) as f64;
    let lr = cfg.learning_rate;

    for _ in 0..cfg.epochs {
        let mut grad_w: Vec<AffineForm> = vec![AffineForm::constant(0.0); d];
        let mut grad_b = AffineForm::constant(0.0);
        for (i, yi) in y_forms.iter().enumerate().take(n) {
            // err_i = w·x_i + b − y_i
            let mut err = b.clone();
            for (j, wj) in w.iter().enumerate() {
                err = err.add(&mul_domain(wj, cell(i, j), &pool, cfg.domain));
            }
            err = err.sub(yi);
            for (j, gj) in grad_w.iter_mut().enumerate() {
                *gj = gj.add(&mul_domain(&err, cell(i, j), &pool, cfg.domain));
            }
            grad_b = grad_b.add(&err);
        }
        for j in 0..d {
            w[j] = w[j]
                .scale(1.0 - lr * cfg.l2)
                .sub(&grad_w[j].scale(lr * inv_n))
                .condense(cfg.max_symbols, &pool);
        }
        b = b
            .sub(&grad_b.scale(lr * inv_n))
            .condense(cfg.max_symbols, &pool);
    }
    SymbolicLinear {
        weights: w,
        intercept: b,
    }
}

/// Domain-dependent multiplication: zonotopes use correlated affine
/// multiplication; interval mode collapses both operands to their ranges
/// (decorrelating them) and re-wraps — the baseline Zorro improves on.
fn mul_domain(a: &AffineForm, b: &AffineForm, pool: &SymbolPool, domain: Domain) -> AffineForm {
    match domain {
        Domain::Zonotope => a.mul(b, pool),
        Domain::Interval => {
            let product = a.to_interval() * b.to_interval();
            AffineForm::from_interval(product, pool)
        }
    }
}

/// The concrete reference: full-batch GD with the hyperparameters of `cfg`
/// on a fully known matrix. `train_symbolic` over-approximates this run
/// for every possible world.
pub fn train_concrete(x: &Matrix, y: &[f64], cfg: &ZorroConfig) -> (Vec<f64>, f64) {
    let (n, d) = (x.nrows(), x.ncols());
    let mut w = vec![0.0f64; d];
    let mut b = 0.0f64;
    let inv_n = 1.0 / n.max(1) as f64;
    for _ in 0..cfg.epochs {
        let mut grad_w = vec![0.0f64; d];
        let mut grad_b = 0.0f64;
        for (i, &yi) in y.iter().enumerate().take(n) {
            let xi = x.row(i);
            let err = w.iter().zip(xi).map(|(wj, &xj)| wj * xj).sum::<f64>() + b - yi;
            for (g, &xj) in grad_w.iter_mut().zip(xi) {
                *g += err * xj;
            }
            grad_b += err;
        }
        for j in 0..d {
            w[j] =
                w[j] * (1.0 - cfg.learning_rate * cfg.l2) - cfg.learning_rate * grad_w[j] * inv_n;
        }
        b -= cfg.learning_rate * grad_b * inv_n;
    }
    (w, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// y = 2x₀ − x₁ + 0.5 with a few missing cells.
    fn incomplete_problem() -> (IncompleteMatrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i % 5) as f64 * 0.2, ((i * 3) % 7) as f64 * 0.1])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - r[1] + 0.5).collect();
        let mut im = IncompleteMatrix::from_exact(&x);
        im.set_missing(1, 0, Interval::new(0.0, 1.0));
        im.set_missing(4, 1, Interval::new(0.0, 0.6));
        im.set_missing(9, 0, Interval::new(0.2, 0.8));
        (im, y)
    }

    fn cfg() -> ZorroConfig {
        ZorroConfig {
            epochs: 25,
            learning_rate: 0.1,
            ..Default::default()
        }
    }

    #[test]
    fn symbolic_training_is_sound_over_sampled_worlds() {
        let (im, y) = incomplete_problem();
        let model = train_symbolic(&im, &y, &cfg());
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..30 {
            let picks: Vec<f64> = (0..im.nrows() * im.ncols()).map(|_| rng.random()).collect();
            let ncols = im.ncols();
            let world = im.world(&|i, j| picks[i * ncols + j]);
            let (w, b) = train_concrete(&world, &y, &cfg());
            for (j, wj) in w.iter().enumerate() {
                let range = model.weights[j].to_interval();
                assert!(
                    range.contains(*wj),
                    "trial {trial}: w[{j}]={wj} outside {range}"
                );
            }
            assert!(model.intercept.to_interval().contains(b));
            // Predictions for a probe point are inside the range too.
            let probe = [0.4, 0.3];
            let concrete = w[0] * probe[0] + w[1] * probe[1] + b;
            assert!(model.prediction_range(&probe).contains(concrete));
        }
    }

    #[test]
    fn interval_domain_is_sound_but_looser() {
        let (im, y) = incomplete_problem();
        let zono = train_symbolic(&im, &y, &cfg());
        let intv = train_symbolic(
            &im,
            &y,
            &ZorroConfig {
                domain: Domain::Interval,
                ..cfg()
            },
        );
        // Both sound on the midpoint world…
        let (w, b) = train_concrete(&im.midpoint_world(), &y, &cfg());
        for (j, &wj) in w.iter().enumerate().take(2) {
            assert!(zono.weights[j].to_interval().contains(wj));
            assert!(intv.weights[j].to_interval().contains(wj));
        }
        assert!(zono.intercept.to_interval().contains(b));
        // …but the zonotope bounds are strictly tighter.
        assert!(
            zono.max_weight_width() < intv.max_weight_width(),
            "zonotope {} vs interval {}",
            zono.max_weight_width(),
            intv.max_weight_width()
        );
    }

    #[test]
    fn no_missing_values_yields_pointlike_model() {
        let rows = vec![vec![0.0], vec![1.0], vec![2.0]];
        let x = Matrix::from_rows(&rows).unwrap();
        let y = vec![1.0, 3.0, 5.0];
        let im = IncompleteMatrix::from_exact(&x);
        let model = train_symbolic(&im, &y, &cfg());
        assert!(model.max_weight_width() < 1e-9);
        let (w, _) = train_concrete(&x, &y, &cfg());
        assert!((model.weights[0].center - w[0]).abs() < 1e-9);
    }

    #[test]
    fn more_missingness_widens_worst_case_loss() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![(i % 10) as f64 * 0.1]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let test = RegDataset::new(x.clone(), y.clone()).unwrap();

        let mut losses = Vec::new();
        for n_missing in [0usize, 2, 4, 8] {
            let mut im = IncompleteMatrix::from_exact(&x);
            for i in 0..n_missing {
                im.set_missing(i, 0, Interval::new(0.0, 1.0));
            }
            let model = train_symbolic(&im, &y, &cfg());
            losses.push(model.worst_case_mse(&test));
        }
        for w in losses.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "losses not monotone: {losses:?}");
        }
        assert!(losses[3] > losses[0]);
    }

    #[test]
    fn worst_case_mse_bounds_concrete_mse() {
        let (im, y) = incomplete_problem();
        let model = train_symbolic(&im, &y, &cfg());
        let world = im.midpoint_world();
        let test = RegDataset::new(world.clone(), y.clone()).unwrap();
        let (w, b) = train_concrete(&world, &y, &cfg());
        let concrete_mse: f64 = (0..test.len())
            .map(|i| {
                let p: f64 = w
                    .iter()
                    .zip(test.x.row(i))
                    .map(|(wj, &xj)| wj * xj)
                    .sum::<f64>()
                    + b;
                (p - test.y[i]).powi(2)
            })
            .sum::<f64>()
            / test.len() as f64;
        assert!(model.worst_case_mse(&test) >= concrete_mse - 1e-9);
    }

    #[test]
    fn sigmoid_ranges_are_monotone_images() {
        let (im, y) = incomplete_problem();
        let model = train_symbolic(&im, &y, &cfg());
        let probe = [0.4, 0.3];
        let raw = model.prediction_range(&probe);
        let sig = model.sigmoid_prediction_range(&probe);
        assert!(sig.lo <= sig.hi);
        assert!(sig.lo >= 0.0 && sig.hi <= 1.0);
        // Concrete midpoint-world prediction maps inside.
        let (w, b) = train_concrete(&im.midpoint_world(), &y, &cfg());
        let z = w[0] * probe[0] + w[1] * probe[1] + b;
        assert!(raw.contains(z));
        assert!(sig.contains(1.0 / (1.0 + (-z).exp())));
        // Certification agrees with the range.
        match model.certified_class(&probe) {
            Some(true) => assert!(sig.lo >= 0.5),
            Some(false) => assert!(sig.hi < 0.5),
            None => assert!(sig.lo < 0.5 && sig.hi >= 0.5),
        }
    }

    #[test]
    fn uncertain_labels_are_sound_and_widen_bounds() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![(i % 5) as f64 * 0.2]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y_point: Vec<f64> = rows.iter().map(|r| 2.0 * r[0]).collect();
        let im = IncompleteMatrix::from_exact(&x);
        let exact = train_symbolic(&im, &y_point, &cfg());

        // Make three labels uncertain by ±0.3.
        let y_bounds: Vec<Interval> = y_point
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if i < 3 {
                    Interval::new(v - 0.3, v + 0.3)
                } else {
                    Interval::point(v)
                }
            })
            .collect();
        let fuzzy = train_symbolic_uncertain_labels(&im, &y_bounds, &cfg());
        assert!(fuzzy.max_weight_width() > exact.max_weight_width());

        // Soundness: concrete GD on several label completions stays inside.
        for &t in &[0.0f64, 0.5, 1.0] {
            let labels: Vec<f64> = y_bounds.iter().map(|iv| iv.lo + t * iv.width()).collect();
            let (w, b) = train_concrete(&x, &labels, &cfg());
            assert!(
                fuzzy.weights[0].to_interval().contains(w[0]),
                "t={t}: {} outside {}",
                w[0],
                fuzzy.weights[0].to_interval()
            );
            assert!(fuzzy.intercept.to_interval().contains(b));
        }
    }

    #[test]
    fn combined_missing_features_and_uncertain_labels() {
        let (im, y) = incomplete_problem();
        let y_bounds: Vec<Interval> = y.iter().map(|&v| Interval::new(v - 0.1, v + 0.1)).collect();
        let model = train_symbolic_uncertain_labels(&im, &y_bounds, &cfg());
        // Strictly wider than the point-label model.
        let point_model = train_symbolic(&im, &y, &cfg());
        assert!(model.max_weight_width() > point_model.max_weight_width());
        // Sound on the midpoint world with midpoint labels.
        let (w, b) = train_concrete(&im.midpoint_world(), &y, &cfg());
        for (j, &wj) in w.iter().enumerate().take(2) {
            assert!(model.weights[j].to_interval().contains(wj));
        }
        assert!(model.intercept.to_interval().contains(b));
    }

    #[test]
    fn condensation_keeps_training_bounded() {
        let (im, y) = incomplete_problem();
        let tight_cfg = ZorroConfig {
            max_symbols: 4,
            ..cfg()
        };
        let model = train_symbolic(&im, &y, &tight_cfg);
        for wj in &model.weights {
            assert!(wj.n_symbols() <= 5 + im.n_missing());
        }
        // Still sound on the midpoint world.
        let (w, _) = train_concrete(&im.midpoint_world(), &y, &tight_cfg);
        for (j, &wj) in w.iter().enumerate().take(2) {
            assert!(model.weights[j].to_interval().contains(wj));
        }
    }
}
