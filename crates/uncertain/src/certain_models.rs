//! Certain and approximately certain models (Zhen, Aryal, Termehchy &
//! Chabada, SIGMOD 2024): decide whether missing feature values even
//! *matter* — if one model is optimal in every possible world, training can
//! proceed without any imputation or cleaning.
//!
//! For ridge-regularized linear regression we use the paper's core
//! sufficient condition: fit the model on the complete rows; the model is
//! **certain** if every incomplete row is guaranteed a zero residual
//! regardless of its missing values — which requires (a) the weights on its
//! missing features to be zero and (b) the residual over its known features
//! to vanish. Then the incomplete rows contribute zero gradient in every
//! world, so the complete-row optimum is the optimum everywhere.
//! **Approximately certain** relaxes both zeros to an `ε` tolerance, giving
//! a bounded worst-case gradient perturbation instead of exactness.

use crate::incomplete::IncompleteMatrix;
use nde_learners::models::linear::{FittedLinear, LinearRegression};
use nde_learners::{Matrix, RegDataset, Result};

/// The verdict of the certain-model analysis.
#[derive(Debug, Clone)]
pub enum CertainVerdict {
    /// One model is optimal in every possible world; here it is.
    Certain(FittedLinear),
    /// A model exists whose worst-case optimality violation is below the
    /// given score (the ε-relaxation); `score` is the largest residual/
    /// weight-width product observed.
    ApproximatelyCertain {
        /// The candidate model (fit on complete rows).
        model: FittedLinear,
        /// The worst violation observed (≤ the ε that was asked for).
        score: f64,
    },
    /// Missing values genuinely change the optimum; cleaning (or
    /// uncertainty-aware training à la Zorro) is needed. `score` is the
    /// violation magnitude that ruled certainty out.
    Uncertain {
        /// The violation magnitude.
        score: f64,
    },
}

impl CertainVerdict {
    /// Whether training can skip cleaning at tolerance 0.
    pub fn is_certain(&self) -> bool {
        matches!(self, CertainVerdict::Certain(_))
    }
}

/// Runs the analysis at tolerance `epsilon` (`0.0` for exact certainty).
///
/// Returns `Err` only if the regression itself fails; "no certain model"
/// is the `Uncertain` verdict, not an error.
pub fn certain_model(
    x: &IncompleteMatrix,
    y: &[f64],
    l2: f64,
    epsilon: f64,
) -> Result<CertainVerdict> {
    let incomplete: std::collections::HashSet<usize> = x.incomplete_rows().into_iter().collect();
    let complete: Vec<usize> = (0..x.nrows()).filter(|i| !incomplete.contains(i)).collect();

    // Fit on complete rows only.
    let rows: Vec<Vec<f64>> = complete
        .iter()
        .map(|&i| x.row(i).iter().map(|c| c.mid()).collect())
        .collect();
    let targets: Vec<f64> = complete.iter().map(|&i| y[i]).collect();
    let data = RegDataset::new(Matrix::from_rows(&rows)?, targets)?;
    let trainer = LinearRegression {
        l2,
        fit_intercept: true,
    };
    let model = trainer.fit(&data)?;

    // Check the violation for every incomplete row: |residual using known
    // cells| + Σ_missing |w_j| · radius_j bounds how far the row's residual
    // can be from zero in the worst world.
    let mut worst = 0.0f64;
    for &i in &incomplete {
        let mut pred_known = model.intercept;
        let mut missing_term = 0.0;
        for (j, cell) in x.row(i).iter().enumerate() {
            if cell.width() > 0.0 {
                // Midpoint contribution plus worst-case swing.
                pred_known += model.weights[j] * cell.mid();
                missing_term += model.weights[j].abs() * cell.radius();
            } else {
                pred_known += model.weights[j] * cell.mid();
            }
        }
        let violation = (pred_known - y[i]).abs() + missing_term;
        worst = worst.max(violation);
    }

    // Numerical zero: the regression itself is solved only to floating-
    // point (and ridge) precision, so "exactly zero violation" means below
    // this tolerance.
    const NUMERICAL_ZERO: f64 = 1e-6;
    if worst <= NUMERICAL_ZERO {
        Ok(CertainVerdict::Certain(model))
    } else if worst <= epsilon {
        Ok(CertainVerdict::ApproximatelyCertain {
            model,
            score: worst,
        })
    } else {
        Ok(CertainVerdict::Uncertain { score: worst })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    /// Targets depend only on feature 0; feature 1 is pure noise with
    /// missing entries — and (crucially) is constant in the complete rows,
    /// so the fitted weight on it is 0.
    fn irrelevant_missing_feature() -> (IncompleteMatrix, Vec<f64>) {
        let rows = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![3.0, 0.0],
            vec![4.0, 0.0], // this row's feature-1 will be missing
        ];
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 1.0).collect();
        let mut im = IncompleteMatrix::from_exact(&x);
        im.set_missing(4, 1, Interval::new(-5.0, 5.0));
        (im, y)
    }

    #[test]
    fn irrelevant_missingness_yields_certain_model() {
        let (im, y) = irrelevant_missing_feature();
        let verdict = certain_model(&im, &y, 1e-9, 0.0).unwrap();
        match verdict {
            CertainVerdict::Certain(model) => {
                assert!((model.weights[0] - 2.0).abs() < 1e-4);
                assert!(model.weights[1].abs() < 1e-6);
            }
            other => panic!("expected Certain, got {other:?}"),
        }
    }

    #[test]
    fn relevant_missingness_is_uncertain() {
        // Feature 0 carries the signal and is missing in one row.
        let rows = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let mut im = IncompleteMatrix::from_exact(&x);
        im.set_missing(3, 0, Interval::new(0.0, 10.0));
        let verdict = certain_model(&im, &y, 1e-9, 0.0).unwrap();
        assert!(matches!(verdict, CertainVerdict::Uncertain { .. }));
        assert!(!verdict.is_certain());
    }

    #[test]
    fn small_violations_are_approximately_certain() {
        let rows = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let mut im = IncompleteMatrix::from_exact(&x);
        // A narrow missing interval around the true value 3.0.
        im.set_missing(3, 0, Interval::new(2.95, 3.05));
        let verdict = certain_model(&im, &y, 1e-9, 0.2).unwrap();
        match verdict {
            CertainVerdict::ApproximatelyCertain { score, .. } => {
                assert!(score > 0.0 && score <= 0.2, "score {score}");
            }
            other => panic!("expected ApproximatelyCertain, got {other:?}"),
        }
    }

    #[test]
    fn fully_complete_data_is_trivially_certain() {
        let rows = vec![vec![1.0], vec![2.0]];
        let x = Matrix::from_rows(&rows).unwrap();
        let im = IncompleteMatrix::from_exact(&x);
        let verdict = certain_model(&im, &[1.0, 2.0], 1e-9, 0.0).unwrap();
        assert!(verdict.is_certain());
    }
}
