//! Property-based tests for the uncertainty machinery — above all the
//! *soundness* invariants: abstract domains must contain every concrete
//! execution, certain predictions must hold in sampled worlds, and
//! multiplicity ranges must bracket retraining.

use nde_learners::Matrix;
use nde_uncertain::affine::{AffineForm, SymbolPool};
use nde_uncertain::cpclean::{certain_prediction, IncompleteDataset};
use nde_uncertain::incomplete::IncompleteMatrix;
use nde_uncertain::interval::Interval;
use nde_uncertain::zorro::{train_concrete, train_symbolic, ZorroConfig};
use proptest::prelude::*;

fn arb_interval() -> impl Strategy<Value = Interval> {
    (-10.0f64..10.0, 0.0f64..5.0).prop_map(|(lo, w)| Interval::new(lo, lo + w))
}

proptest! {
    /// Interval arithmetic soundness: for sampled member points, every
    /// composite operation's concrete result lies in the abstract result.
    #[test]
    fn interval_ops_sound(a in arb_interval(), b in arb_interval(), ta in 0.0f64..1.0, tb in 0.0f64..1.0) {
        let xa = a.lo + ta * a.width();
        let xb = b.lo + tb * b.width();
        prop_assert!((a + b).contains(xa + xb));
        prop_assert!((a - b).contains(xa - xb));
        prop_assert!((a * b).contains(xa * xb), "{a} * {b} ∌ {}", xa * xb);
        prop_assert!(a.square().contains(xa * xa));
        prop_assert!((-a).contains(-xa));
        prop_assert!(a.hull(&b).contains(xa));
        prop_assert!(a.scale(-2.5).contains(xa * -2.5));
    }

    /// Affine-form soundness under shared-symbol composition: build an
    /// expression DAG reusing the same uncertain inputs and check a
    /// sampled valuation stays inside the concretization.
    #[test]
    fn affine_composition_sound(
        iv1 in arb_interval(),
        iv2 in arb_interval(),
        e1 in -1.0f64..1.0,
        e2 in -1.0f64..1.0,
        c in -3.0f64..3.0,
    ) {
        let pool = SymbolPool::new();
        let x = AffineForm::from_interval(iv1, &pool);
        let y = AffineForm::from_interval(iv2, &pool);
        // expr = (x + y)·x − c·y + x  (reuses x and y across terms)
        let expr = x.add(&y).mul(&x, &pool).sub(&y.scale(c)).add(&x);
        // Concrete evaluation with the same symbol valuation everywhere.
        let symbol_of_x = x.terms.keys().next().copied();
        let symbol_of_y = y.terms.keys().next().copied();
        let eps = |s: usize| -> f64 {
            if Some(s) == symbol_of_x {
                e1
            } else if Some(s) == symbol_of_y {
                e2
            } else {
                0.0 // fresh remainder symbols: any value in [-1,1] is valid
            }
        };
        let xv = x.eval(&eps);
        let yv = y.eval(&eps);
        let concrete = (xv + yv) * xv - c * yv + xv;
        prop_assert!(
            expr.to_interval().contains(concrete),
            "{concrete} outside {}", expr.to_interval()
        );
    }

    /// Condensation never shrinks the concretization (soundness of the
    /// symbol-folding used by Zorro between epochs).
    #[test]
    fn condensation_sound(radii in prop::collection::vec(0.0f64..2.0, 1..15), keep in 0usize..6) {
        let pool = SymbolPool::new();
        let mut acc = AffineForm::constant(1.0);
        for &r in &radii {
            acc = acc.add(&AffineForm::from_interval(Interval::new(-r, r), &pool));
        }
        let before = acc.to_interval();
        let after = acc.condense(keep, &pool).to_interval();
        prop_assert!(after.contains_interval(&before));
    }

    /// Zorro soundness on random regression problems: the symbolic weights
    /// contain the concrete GD weights of sampled possible worlds.
    #[test]
    fn zorro_contains_sampled_worlds(
        xs in prop::collection::vec(-2.0f64..2.0, 5..12),
        missing_pos in 0usize..5,
        width in 0.1f64..1.5,
        pick in 0.0f64..1.0,
    ) {
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let y: Vec<f64> = xs.iter().map(|&x| 1.5 * x - 0.3).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut im = IncompleteMatrix::from_exact(&x);
        let target = missing_pos % xs.len();
        let base = xs[target];
        im.set_missing(target, 0, Interval::new(base - width, base + width));

        let cfg = ZorroConfig { epochs: 15, learning_rate: 0.05, ..Default::default() };
        let model = train_symbolic(&im, &y, &cfg);

        let ncols = im.ncols();
        let world = im.world(&|i, j| if i * ncols + j == target { pick } else { 0.5 });
        let (w, b) = train_concrete(&world, &y, &cfg);
        prop_assert!(
            model.weights[0].to_interval().contains(w[0]),
            "w {} outside {}", w[0], model.weights[0].to_interval()
        );
        prop_assert!(model.intercept.to_interval().contains(b));
    }

    /// CPClean soundness: when a prediction is reported certain, every
    /// sampled world's concrete k-NN agrees with it.
    #[test]
    fn certain_predictions_hold_in_worlds(
        points in prop::collection::vec((-5.0f64..5.0, 0usize..2), 3..10),
        missing_idx in 0usize..10,
        width in 0.0f64..4.0,
        query in -5.0f64..5.0,
        picks in prop::collection::vec(0.0f64..1.0, 5),
    ) {
        let n = points.len();
        let target = missing_idx % n;
        let cells: Vec<Interval> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, _))| {
                if i == target {
                    Interval::new(x - width, x + width)
                } else {
                    Interval::point(x)
                }
            })
            .collect();
        let x = IncompleteMatrix::from_intervals(n, 1, cells).unwrap();
        let y: Vec<usize> = points.iter().map(|&(_, l)| l).collect();
        let data = IncompleteDataset { x: x.clone(), y: y.clone(), n_classes: 2 };
        let k = 3;
        if let Some(certain) = certain_prediction(&data, &[query], k) {
            for &p in &picks {
                let world = x.world(&|i, _| if i == target { p } else { 0.5 });
                // Concrete k-NN vote in this world.
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| {
                    (world.get(a, 0) - query).abs()
                        .total_cmp(&(world.get(b, 0) - query).abs())
                        .then(a.cmp(&b))
                });
                let votes1 = order.iter().take(k.min(n)).filter(|&&i| y[i] == 1).count();
                let kk = k.min(n);
                // Only strict majorities are comparable (ties are resolved
                // by convention and excluded by the certainty definition).
                if 2 * votes1 != kk {
                    let concrete = usize::from(2 * votes1 > kk);
                    prop_assert_eq!(
                        concrete, certain,
                        "world pick {} disagrees with certain label", p
                    );
                }
            }
        }
    }

    /// Incomplete-matrix worlds always stay inside bounds and the midpoint
    /// world is a member.
    #[test]
    fn worlds_respect_bounds(
        los in prop::collection::vec(-5.0f64..5.0, 1..10),
        widths in prop::collection::vec(0.0f64..3.0, 1..10),
        pick in 0.0f64..1.0,
    ) {
        let n = los.len().min(widths.len());
        let cells: Vec<Interval> = (0..n)
            .map(|i| Interval::new(los[i], los[i] + widths[i]))
            .collect();
        let im = IncompleteMatrix::from_intervals(n, 1, cells).unwrap();
        let w = im.world(&|_, _| pick);
        prop_assert!(im.contains_world(&w, 1e-12));
        prop_assert!(im.contains_world(&im.midpoint_world(), 1e-12));
    }
}
