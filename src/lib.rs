//! Workspace facade for the `navigating-data-errors` reproduction.
//!
//! This crate exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`); it simply re-exports the
//! member crates so examples can use one import root.

pub use nde_core as core;
pub use nde_datagen as datagen;
pub use nde_importance as importance;
pub use nde_learners as learners;
pub use nde_pipeline as pipeline;
pub use nde_quality as quality;
pub use nde_tabular as tabular;
pub use nde_uncertain as uncertain;
