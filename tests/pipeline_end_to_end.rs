//! Cross-crate integration: the Figure 3 pipeline from raw scenario tables
//! through provenance, inspection, screening and what-if analysis.

use navigating_data_errors::core::pipeline_scenario::{
    datascope_for_train_source, figure3_plan, pipeline_sources, run_figure3,
};
use navigating_data_errors::core::scenario::load_recommendation_letters;
use navigating_data_errors::datagen::errors::flip_labels;
use navigating_data_errors::datagen::HiringConfig;
use navigating_data_errors::learners::KnnClassifier;
use navigating_data_errors::pipeline::arguseyes::{provenance_leakage, screen, ScreeningConfig};
use navigating_data_errors::pipeline::inspect::inspect;
use navigating_data_errors::pipeline::whatif::{delete_source_rows, rerun_without_rows};
use navigating_data_errors::pipeline::Plan;

fn small_scenario() -> navigating_data_errors::datagen::HiringScenario {
    load_recommendation_letters(&HiringConfig {
        n_train: 150,
        n_valid: 60,
        n_test: 60,
        ..Default::default()
    })
}

#[test]
fn provenance_deletion_equals_rerun_on_the_real_pipeline() {
    let scenario = small_scenario();
    let srcs = pipeline_sources(&scenario, scenario.train.clone());
    let plan = figure3_plan();
    let traced = plan.run_traced(&srcs).unwrap();
    for deletions in [vec![0usize, 5, 33], (0..50).collect::<Vec<_>>(), vec![]] {
        let incremental = delete_source_rows(&traced, "train_df", &deletions).unwrap();
        let rerun = rerun_without_rows(&plan, &srcs, "train_df", &deletions).unwrap();
        assert_eq!(incremental.table, rerun);
    }
    // Side tables too.
    let inc = delete_source_rows(&traced, "jobdetail_df", &[0, 3]).unwrap();
    let rer = rerun_without_rows(&plan, &srcs, "jobdetail_df", &[0, 3]).unwrap();
    assert_eq!(inc.table, rer);
}

#[test]
fn incremental_insertion_matches_full_rerun_on_the_real_pipeline() {
    use navigating_data_errors::pipeline::whatif::insert_source_rows;
    let scenario = small_scenario();
    let srcs = pipeline_sources(&scenario, scenario.train.clone());
    let plan = figure3_plan();
    let before = plan.run(&srcs).unwrap();
    // New letters arrive: reuse some validation rows as the delta batch.
    let delta_rows = scenario.valid.head(20);
    let delta = insert_source_rows(&plan, &srcs, "train_df", &delta_rows).unwrap();
    let combined = before.concat(&delta.table).unwrap();
    // Reference: full rerun on the grown source.
    let grown = scenario.train.concat(&delta_rows).unwrap();
    let mut grown_srcs = srcs.clone();
    grown_srcs.insert("train_df".into(), grown);
    let full = plan.run(&grown_srcs).unwrap();
    assert_eq!(combined, full);
    // Delta lineage indexes into the grown table.
    if let Some(src) = delta.source_index("train_df") {
        for m in &delta.lineage {
            for row in m.rows_of_source(src) {
                assert!(row >= scenario.train.num_rows());
            }
        }
    }
}

#[test]
fn every_output_row_has_three_source_dependencies() {
    let scenario = small_scenario();
    let run = run_figure3(&scenario).unwrap();
    for m in &run.traced.lineage {
        // train ⋈ jobdetail ⋈ social: exactly one row of each.
        assert_eq!(m.tokens().len(), 3);
        let sources: std::collections::HashSet<usize> =
            m.tokens().iter().map(|t| t.source).collect();
        assert_eq!(sources.len(), 3);
    }
}

#[test]
fn inspection_counts_are_consistent_with_execution() {
    let scenario = small_scenario();
    let srcs = pipeline_sources(&scenario, scenario.train.clone());
    let plan = figure3_plan();
    let out = plan.run(&srcs).unwrap();
    let report = inspect(&plan, &srcs, &["sex", "sector"], 0.9).unwrap();
    // The last operator's row count equals the final output.
    assert_eq!(report.operators.last().unwrap().rows_out, out.num_rows());
    // Operator count matches the plan size.
    assert_eq!(report.operators.len(), plan.num_operators());
}

#[test]
fn screening_flags_label_errors_after_injection() {
    let mut scenario = small_scenario();
    let (dirty, _) = flip_labels(&scenario.train, "sentiment", 0.3, 3).unwrap();
    scenario.train = dirty;
    let run = run_figure3(&scenario).unwrap();
    let valid_srcs = pipeline_sources(&scenario, scenario.valid.clone());
    let valid_out = figure3_plan().run(&valid_srcs).unwrap();
    let valid = run.encoder.transform(&valid_out).unwrap();
    let learner = KnnClassifier::new(5);
    let report = screen(
        &ScreeningConfig::default(),
        &learner,
        &run.train,
        &valid,
        None,
    )
    .unwrap();
    assert!(
        !report.of_check("label_errors").is_empty(),
        "30% flips must trip the label-error screen: {:?}",
        report.issues
    );
}

#[test]
fn overlapping_splits_are_caught_by_provenance_leakage() {
    let scenario = small_scenario();
    let srcs = pipeline_sources(&scenario, scenario.train.clone());
    // "Test" pipeline accidentally built from the training table.
    let train_traced = figure3_plan().run_traced(&srcs).unwrap();
    let test_traced = Plan::source("train_df")
        .filter("even ids", |r| r.int("letter_id").unwrap_or(1) % 2 == 0)
        .run_traced(&srcs)
        .unwrap();
    let leaks = provenance_leakage(&train_traced, &test_traced);
    assert!(!leaks.is_empty(), "shared source rows must be reported");
    assert!(leaks.iter().all(|(name, _)| name == "train_df"));
}

#[test]
fn datascope_is_stable_across_runs() {
    let scenario = small_scenario();
    let run1 = run_figure3(&scenario).unwrap();
    let run2 = run_figure3(&scenario).unwrap();
    let s1 = datascope_for_train_source(&scenario, &run1, 5).unwrap();
    let s2 = datascope_for_train_source(&scenario, &run2, 5).unwrap();
    assert_eq!(s1, s2);
}
