//! Thread-count determinism: every parallelized entry point must produce
//! **bit-identical** results for 1, 2, and 8 workers with a fixed seed.
//! The parallel layer guarantees this by fixing chunk boundaries as a
//! function of input length and folding partial results in chunk order —
//! these tests are the contract.

use nde_core::challenge::{Challenge, ChallengeConfig};
use nde_core::cleaning::Strategy;
use nde_core::scenario::encode_splits;
use nde_datagen::errors::{flip_labels, inject_missing, Mechanism};
use nde_datagen::{HiringConfig, HiringScenario};
use nde_importance::knn_shapley::{build_topk_cache, knn_shapley, knn_shapley_parallel};
use nde_importance::semivalue::{banzhaf_msr, tmc_shapley, McConfig};
use nde_importance::utility::{ModelUtility, UtilityMetric};
use nde_learners::dataset::ClassDataset;
use nde_learners::{KnnClassifier, Learner};
use nde_uncertain::cpclean::{certain_fraction, IncompleteDataset};
use nde_uncertain::incomplete::IncompleteMatrix;
use nde_uncertain::interval::Interval;

const THREADS: [usize; 3] = [1, 2, 8];

fn encoded_splits() -> (ClassDataset, ClassDataset) {
    let s = HiringScenario::generate(&HiringConfig {
        n_train: 120,
        n_valid: 40,
        n_test: 0,
        ..Default::default()
    });
    let (dirty, _) = flip_labels(&s.train, "sentiment", 0.2, 5).unwrap();
    let (_, train, valid) = encode_splits(&dirty, &s.valid).unwrap();
    (train, valid)
}

fn assert_bit_identical(name: &str, reference: &[f64], candidate: &[f64], threads: usize) {
    assert_eq!(
        reference.len(),
        candidate.len(),
        "{name} length at {threads} threads"
    );
    for (i, (a, b)) in reference.iter().zip(candidate).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{name}[{i}] differs at {threads} threads: {a} vs {b}"
        );
    }
}

#[test]
fn knn_shapley_is_thread_count_invariant() {
    let (train, valid) = encoded_splits();
    let serial = knn_shapley(&train, &valid, 5);
    for threads in THREADS {
        let parallel = knn_shapley_parallel(&train, &valid, 5, threads);
        assert_bit_identical("knn_shapley", &serial, &parallel, threads);
    }
}

#[test]
fn tmc_shapley_is_thread_count_invariant() {
    let (train, valid) = encoded_splits();
    let learner = KnnClassifier::new(5);
    let util = ModelUtility::new(&learner, &train, &valid, UtilityMetric::Accuracy);
    let cfg = |threads| {
        McConfig::new(24, 9)
            .with_truncation(1e-3)
            .with_threads(threads)
    };
    let reference = tmc_shapley(&util, &cfg(1));
    for threads in THREADS {
        let scores = tmc_shapley(&util, &cfg(threads));
        assert_bit_identical("tmc_shapley", &reference, &scores, threads);
    }
}

#[test]
fn banzhaf_msr_is_thread_count_invariant() {
    let (train, valid) = encoded_splits();
    let learner = KnnClassifier::new(5);
    let util = ModelUtility::new(&learner, &train, &valid, UtilityMetric::Accuracy);
    let reference = banzhaf_msr(&util, &McConfig::new(24, 9).with_threads(1));
    for threads in THREADS {
        let scores = banzhaf_msr(&util, &McConfig::new(24, 9).with_threads(threads));
        assert_bit_identical("banzhaf_msr", &reference, &scores, threads);
    }
}

/// Data-quality profiling shares the deterministic-parallel contract:
/// the sharded profile of a realistic mixed-type table (floats with
/// injected nulls, strings, ints, bools) must be bit-identical for any
/// worker count at fixed chunk boundaries. Explicit worker counts are
/// passed instead of mutating `NDE_THREADS` (environment mutation is
/// process-global and owned by the test below).
#[test]
fn quality_profile_is_thread_count_invariant() {
    let s = HiringScenario::generate(&HiringConfig {
        n_train: 300,
        n_valid: 0,
        n_test: 0,
        ..Default::default()
    });
    let (table, _) = inject_missing(&s.train, "employer_rating", 0.2, Mechanism::Mcar, 11).unwrap();
    // A small odd chunk length forces many shards (and sketch
    // compactions during the merge fold) even on a 300-row table.
    for chunk_len in [57, nde_tabular::profile::QUALITY_PROFILE_CHUNK_LEN] {
        let reference = table.quality_profile_sharded(1, chunk_len);
        for threads in THREADS {
            let candidate = table.quality_profile_sharded(threads, chunk_len);
            assert_eq!(
                candidate, reference,
                "quality profile differs at {threads} workers (chunk_len {chunk_len})"
            );
            assert_eq!(
                candidate.to_json(),
                reference.to_json(),
                "serialized sketch state differs at {threads} workers"
            );
        }
    }
}

/// The env-driven entry points ([`certain_fraction`], the challenge
/// leaderboard) take their worker count from `NDE_THREADS`. Exercised in a
/// single test because environment mutation is process-global.
#[test]
fn env_driven_entry_points_are_thread_count_invariant() {
    // CPClean certain fraction over MNAR-corrupted ratings.
    let s = HiringScenario::generate(&HiringConfig {
        n_train: 80,
        n_valid: 0,
        n_test: 0,
        ..Default::default()
    });
    let (with_missing, _) =
        inject_missing(&s.train, "employer_rating", 0.15, Mechanism::Mnar, 3).unwrap();
    let ratings: Vec<Interval> = (0..with_missing.num_rows())
        .map(|r| match with_missing.get(r, "employer_rating") {
            Ok(v) if !v.is_null() => Interval::point(v.as_float().unwrap_or(0.0)),
            _ => Interval::new(0.0, 10.0),
        })
        .collect();
    let x = IncompleteMatrix::from_intervals(ratings.len(), 1, ratings).unwrap();
    let y: Vec<usize> = (0..x.nrows()).map(|i| i % 2).collect();
    let data = IncompleteDataset { x, y, n_classes: 2 };
    let queries: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 2.0]).collect();

    // Challenge leaderboard over a strategy fan-out.
    let challenge = Challenge::generate(ChallengeConfig {
        scenario: HiringConfig {
            n_train: 100,
            n_valid: 40,
            n_test: 40,
            ..Default::default()
        },
        budget: 20,
        seed: 7,
        ..Default::default()
    })
    .unwrap();
    let strategies = [Strategy::Random, Strategy::KnnShapley, Strategy::Aum];

    // Indexed k-NN hot paths: batch prediction and the kd-tree-fed top-k
    // cache both fan out over NDE_THREADS workers.
    let (train, valid) = encoded_splits();
    let indexed = KnnClassifier::indexed(5).fit(&train).unwrap();

    let run = || {
        let fraction = certain_fraction(&data, &queries, 3);
        let board = challenge.play_all(&strategies).unwrap();
        let standings: Vec<(String, u64, usize)> = board
            .standings()
            .iter()
            .map(|e| (e.name.clone(), e.accuracy.to_bits(), e.true_positives))
            .collect();
        let preds = indexed.predict_batch(&valid.x);
        let topk = build_topk_cache(&train, &valid, 3);
        let topk_flat: Vec<(u64, u32)> = (0..topk.n_valid())
            .flat_map(|v| topk.neighbors(v).iter().map(|&(d, t)| (d.to_bits(), t)))
            .collect();
        (fraction.to_bits(), standings, preds, topk_flat)
    };

    std::env::set_var("NDE_THREADS", "1");
    let reference = run();
    let brute = KnnClassifier::new(5).fit(&train).unwrap();
    assert_eq!(
        reference.2,
        brute.predict_batch(&valid.x),
        "indexed k-NN diverged from brute force"
    );
    for threads in THREADS {
        std::env::set_var("NDE_THREADS", threads.to_string());
        assert_eq!(run(), reference, "NDE_THREADS={threads} changed results");
    }
    std::env::remove_var("NDE_THREADS");
}
