//! Cross-crate integration: detection quality of the importance methods on
//! the realistic scenario — every informed method must beat the random
//! baseline at finding injected label errors.

use navigating_data_errors::core::cleaning::{importance_scores, Strategy};
use navigating_data_errors::core::scenario::{encode_splits, load_recommendation_letters};
use navigating_data_errors::datagen::errors::flip_labels;
use navigating_data_errors::datagen::HiringConfig;
use navigating_data_errors::importance::rank_ascending;

struct Setup {
    train: navigating_data_errors::learners::ClassDataset,
    valid: navigating_data_errors::learners::ClassDataset,
    report: navigating_data_errors::datagen::InjectionReport,
}

fn setup() -> Setup {
    // Sized so the whole suite stays fast in debug builds: the Monte Carlo
    // estimators retrain O(samples · n) models.
    let scenario = load_recommendation_letters(&HiringConfig {
        n_train: 120,
        n_valid: 50,
        n_test: 0,
        ..Default::default()
    });
    let (dirty, report) = flip_labels(&scenario.train, "sentiment", 0.15, 19).unwrap();
    let (_, train, valid) = encode_splits(&dirty, &scenario.valid).unwrap();
    Setup {
        train,
        valid,
        report,
    }
}

fn precision_with_budget(setup: &Setup, strategy: Strategy, samples: usize, seed: u64) -> f64 {
    let scores = importance_scores(strategy, &setup.train, &setup.valid, 5, samples, seed).unwrap();
    let ranking = rank_ascending(&scores);
    setup.report.precision_at_k(&ranking, setup.report.count())
}

fn precision_of(setup: &Setup, strategy: Strategy, seed: u64) -> f64 {
    precision_with_budget(setup, strategy, 40, seed)
}

#[test]
fn informed_methods_beat_random_at_error_detection() {
    let s = setup();
    let base_rate = s.report.count() as f64 / s.train.len() as f64;
    // Random hovers at the base rate (use a seed decorrelated from the
    // injection seed).
    let p_random = precision_of(&s, Strategy::Random, 777);
    assert!(
        p_random < base_rate + 0.15,
        "random suspiciously good: {p_random}"
    );
    for strategy in [
        Strategy::KnnShapley,
        Strategy::Confident,
        Strategy::Aum,
        Strategy::Influence,
    ] {
        let p = precision_of(&s, strategy, 777);
        assert!(
            p > base_rate + 0.2,
            "{} precision {p} not better than base rate {base_rate}",
            strategy.name()
        );
    }
    // LOO is informative but markedly weaker: removing a single point
    // rarely flips a 5-NN vote, so most LOO scores are exactly zero — the
    // very limitation that motivates Shapley-style valuation in §2.1.
    let p_loo = precision_of(&s, Strategy::Loo, 777);
    assert!(p_loo > base_rate, "loo precision {p_loo} below base rate");
    let p_shapley = precision_of(&s, Strategy::KnnShapley, 777);
    assert!(
        p_shapley > p_loo,
        "Shapley should dominate LOO: {p_shapley} vs {p_loo}"
    );
}

#[test]
fn monte_carlo_estimators_are_informative_with_moderate_budgets() {
    let s = setup();
    let base_rate = s.report.count() as f64 / s.train.len() as f64;
    // Permutation estimators: 40 permutations suffice. Banzhaf-MSR splits
    // every sample across all points, so it needs a larger subset budget to
    // beat the base rate (this budget/variance trade-off is exactly what
    // the A1 ablation charts).
    for (strategy, samples) in [
        (Strategy::TmcShapley, 40usize),
        (Strategy::BetaShapley, 40),
        (Strategy::Banzhaf, 600),
    ] {
        let p = precision_with_budget(&s, strategy, samples, 777);
        assert!(
            p > base_rate,
            "{} precision {p} below base rate {base_rate}",
            strategy.name()
        );
    }
}

#[test]
fn knn_shapley_and_loo_agree_on_the_worst_offenders() {
    let s = setup();
    let shapley = importance_scores(Strategy::KnnShapley, &s.train, &s.valid, 5, 0, 1).unwrap();
    let loo = importance_scores(Strategy::Loo, &s.train, &s.valid, 5, 0, 1).unwrap();
    let top_shapley: std::collections::HashSet<usize> =
        rank_ascending(&shapley).into_iter().take(30).collect();
    let top_loo: std::collections::HashSet<usize> =
        rank_ascending(&loo).into_iter().take(30).collect();
    let overlap = top_shapley.intersection(&top_loo).count();
    assert!(
        overlap >= 8,
        "only {overlap}/30 overlap between Shapley and LOO"
    );
}
