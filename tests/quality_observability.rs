//! End-to-end data-quality observability: the Figure-3 pipeline run under
//! `NDE_QUALITY=full` must produce bit-identical output tables, collect
//! one profile per operator boundary, and — when the trace JSON sink is
//! live — emit parseable `{"type":"profile"}` records alongside spans.
//! With profiling off (the default), nothing may be recorded at all.
//! This test binary is its own process, so the mode and sink overrides
//! do not leak into other suites.

use navigating_data_errors::core::pipeline_scenario::{figure3_plan, pipeline_sources};
use navigating_data_errors::datagen::{HiringConfig, HiringScenario};
use nde_quality::{QualityMode, TableProfile};
use nde_trace::json::JsonValue;

fn run_figure3(scenario: &HiringScenario) -> navigating_data_errors::tabular::Table {
    let srcs = pipeline_sources(scenario, scenario.train.clone());
    figure3_plan().run(&srcs).expect("pipeline run")
}

#[test]
fn profiling_is_observational_and_emits_parseable_records() {
    let mut path = std::env::temp_dir();
    path.push(format!("nde_quality_obs_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let scenario = HiringScenario::generate(&HiringConfig {
        n_train: 120,
        n_valid: 40,
        n_test: 40,
        ..Default::default()
    });

    // Profiling off (the default): results computed, nothing collected.
    nde_quality::configure_quality(QualityMode::Off);
    nde_trace::configure(nde_trace::Sink::Off, Some(&path));
    let baseline = run_figure3(&scenario);
    assert_eq!(
        nde_quality::profiles_pending(),
        0,
        "off mode must not profile"
    );
    assert_eq!(nde_trace::counter_value("quality.profiles"), 0);
    assert_eq!(nde_trace::counter_value("quality.cells_profiled"), 0);
    assert!(!path.exists(), "off sink must not create the JSON file");

    // Full profiling + JSON sink: identical output, one profile per
    // operator boundary, profile records on the trace stream.
    nde_quality::configure_quality(QualityMode::Full);
    nde_trace::configure(nde_trace::Sink::Json, Some(&path));
    let profiled = run_figure3(&scenario);
    assert_eq!(
        baseline, profiled,
        "profiling must never change computed results"
    );
    let ops = nde_quality::take_profiles();
    assert_eq!(ops.len(), 7, "figure-3 plan has 7 operator boundaries");
    assert_eq!(nde_trace::counter_value("quality.profiles"), 7);
    let final_op = ops.last().unwrap();
    assert_eq!(final_op.profile.rows, profiled.num_rows() as u64);
    assert_eq!(
        final_op.profile,
        profiled.quality_profile(),
        "the last boundary profile is exactly the output table's profile"
    );
    assert!(final_op.profile.column("employer_rating").is_some());
    assert!(final_op.profile.column("has_twitter").is_some());

    // Final mode: exactly one profile, taken at the plan root.
    nde_quality::configure_quality(QualityMode::Final);
    let final_only = run_figure3(&scenario);
    assert_eq!(baseline, final_only);
    let finals = nde_quality::take_profiles();
    assert_eq!(finals.len(), 1, "final mode profiles only the plan output");
    assert!(
        finals[0].op.starts_with("final:"),
        "unexpected label {:?}",
        finals[0].op
    );
    assert_eq!(finals[0].profile, final_op.profile);

    nde_quality::configure_quality(QualityMode::Off);
    nde_trace::report();
    nde_trace::configure(nde_trace::Sink::Off, None); // flush + close

    let contents = std::fs::read_to_string(&path).expect("trace file written");
    let records: Vec<JsonValue> = contents
        .lines()
        .map(|line| {
            nde_trace::json::parse(line)
                .unwrap_or_else(|e| panic!("unparseable trace line: {e}\n{line}"))
        })
        .collect();

    // The profile records parse back: one per boundary (full run) plus
    // one (final run), in record order, matching the drained registry.
    let profiles: Vec<(String, JsonValue)> = records
        .iter()
        .filter_map(nde_quality::parse_profile_record)
        .collect();
    assert_eq!(profiles.len(), 8, "7 full-mode + 1 final-mode records");
    for (op_record, (op, payload)) in ops.iter().zip(&profiles) {
        assert_eq!(&op_record.op, op);
        assert_eq!(
            payload.get("rows").and_then(JsonValue::as_u64),
            Some(op_record.profile.rows),
            "summary payload row count for {op}"
        );
        // The summary payload is the compact per-column digest of the
        // same sketch state the registry holds. Compare rendered text:
        // parsing loses the Int/Number distinction for whole floats.
        let render = |v: &JsonValue| {
            let mut s = String::new();
            nde_trace::json::write_value(&mut s, v);
            s
        };
        assert_eq!(
            render(payload),
            render(&op_record.profile.summary_json_value()),
            "summary payload for {op}"
        );
    }
    assert!(profiles[7].0.starts_with("final:"));

    // The full-mode run also put `quality.profile` spans on the stream,
    // labelled with the operator they profiled.
    let quality_spans: Vec<&JsonValue> = records
        .iter()
        .filter(|r| {
            r.get("type").and_then(JsonValue::as_str) == Some("span")
                && r.get("name").and_then(JsonValue::as_str) == Some("quality.profile")
        })
        .collect();
    assert_eq!(quality_spans.len(), 7);
    assert!(quality_spans
        .iter()
        .any(|s| s.get("fields").and_then(|f| f.get("op")).is_some()));

    let _ = std::fs::remove_file(&path);
}

/// The lossless snapshot serialization (`TableProfile::to_json`) round
/// trips the exact sketch state a pipeline run produced — the property
/// the committed `PROFILE_baseline.json` gate relies on.
#[test]
fn pipeline_profile_round_trips_losslessly() {
    let scenario = HiringScenario::generate(&HiringConfig {
        n_train: 80,
        n_valid: 0,
        n_test: 0,
        ..Default::default()
    });
    let profile = scenario.train.quality_profile();
    let parsed = TableProfile::from_json(&profile.to_json()).expect("round trip");
    assert_eq!(parsed, profile);
    assert_eq!(parsed.to_json(), profile.to_json(), "stable bytes");
}
