//! The trace analyzer against a *real* workload: run the fig2 warm-cache
//! cleaning flow under the JSON sink, then reconstruct the span forest and
//! check the timing invariants that make inclusive/self accounting
//! trustworthy — children sum within parents, self ≤ inclusive, critical
//! paths rooted correctly — plus Chrome Trace export validity. Own test
//! binary = own process, so the sink override cannot leak.

use navigating_data_errors::core::cleaning::iterative_cleaning_cached;
use navigating_data_errors::datagen::errors::flip_labels;
use navigating_data_errors::datagen::{HiringConfig, HiringScenario};
use nde_trace::analyze;
use nde_trace::json::JsonValue;

#[test]
fn analyzer_reconstructs_fig2_run_with_consistent_times() {
    let mut path = std::env::temp_dir();
    path.push(format!("nde_analyze_fig2_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    nde_trace::configure(nde_trace::Sink::Json, Some(&path));

    // The fig2 warm-cache cleaning flow (cold shapley + cached re-ranks).
    let s = HiringScenario::generate(&HiringConfig {
        n_train: 120,
        n_valid: 40,
        n_test: 40,
        ..Default::default()
    });
    let (dirty, _) = flip_labels(&s.train, "sentiment", 0.2, 7).unwrap();
    {
        let root = nde_trace::span("test.fig2_root");
        iterative_cleaning_cached(&dirty, &s.train, &s.valid, &s.test, 20, 40, 5).unwrap();
        drop(root);
    }
    nde_trace::report();
    nde_trace::configure(nde_trace::Sink::Off, None); // flush + close

    let data = analyze::parse_jsonl_file(&path).expect("trajectory parses");
    assert!(data.spans.len() > 10, "expected a real trajectory");
    assert_eq!(
        data.counters.get("neighbor_cache.miss"),
        Some(&1),
        "report counters parsed"
    );
    assert!(data.span_stats.contains_key("cleaning.round"));

    // Tree invariants on every node of every root.
    let roots = analyze::build_span_trees(&data.spans);
    assert!(!roots.is_empty());
    let mut checked = 0usize;
    let mut stack: Vec<&analyze::SpanNode> = roots.iter().collect();
    while let Some(node) = stack.pop() {
        checked += 1;
        assert!(
            node.self_us() <= node.inclusive_us(),
            "self > inclusive at {}",
            node.record.name
        );
        // Children must fit inside the parent (1% + 200µs slack for clock
        // granularity: each span rounds its duration down to whole µs).
        let slack = node.inclusive_us() / 100 + 200;
        assert!(
            node.children_us() <= node.inclusive_us() + slack,
            "children of {} sum to {}µs > parent {}µs",
            node.record.name,
            node.children_us(),
            node.inclusive_us()
        );
        for child in &node.children {
            assert!(
                child.record.depth > node.record.depth,
                "child depth must exceed parent depth"
            );
            assert!(child.record.start_us >= node.record.start_us);
            stack.push(child);
        }
    }
    assert_eq!(checked, data.spans.len(), "every span lands in the forest");

    // The synthetic root adopted the cleaning flow; its critical path
    // starts at the root and descends into real work.
    let fig2_root = roots
        .iter()
        .find(|r| r.record.name == "test.fig2_root")
        .expect("root span reconstructed");
    assert!(fig2_root
        .children
        .iter()
        .any(|c| c.record.name == "cleaning.iterative_cached"));
    let cp = analyze::critical_path(fig2_root);
    assert_eq!(cp[0].name, "test.fig2_root");
    assert!(cp.len() >= 2, "critical path must descend: {cp:?}");

    // Aggregates: totals match the sink's own span_stats for main-thread
    // names, and percentiles are ordered.
    let agg = analyze::aggregate_spans(&roots);
    let rounds = &agg["cleaning.round"];
    assert!(rounds.count >= 2);
    assert!(rounds.p50_us <= rounds.p95_us && rounds.p95_us <= rounds.max_us);
    assert!(rounds.self_us <= rounds.total_us);
    let (sink_count, sink_total) = data.span_stats["cleaning.round"];
    assert_eq!(rounds.count, sink_count);
    assert_eq!(rounds.total_us, sink_total);

    // Chrome Trace export of the same run is valid JSON with one complete
    // event per span.
    let chrome = analyze::to_chrome_trace(&data.spans);
    let parsed = nde_trace::json::parse(&chrome).expect("chrome export parses");
    let events = match parsed.get("traceEvents").unwrap() {
        JsonValue::Array(items) => items,
        other => panic!("traceEvents not an array: {other:?}"),
    };
    let complete = events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
        .count();
    assert_eq!(complete, data.spans.len());

    let _ = std::fs::remove_file(&path);
}
