//! End-to-end observability: the fig2 warm-cache cleaning flow, traced to
//! the JSON sink, must emit parseable JSON-lines with per-operator spans
//! and NeighborCache hit/miss counters — and with tracing off (the
//! default), nothing may be recorded at all. This test binary is its own
//! process, so the sink override does not leak into other suites.

use navigating_data_errors::core::cleaning::iterative_cleaning_cached;
use navigating_data_errors::datagen::errors::flip_labels;
use navigating_data_errors::datagen::{HiringConfig, HiringScenario};
use navigating_data_errors::pipeline::Plan;
use nde_trace::json::JsonValue;

fn scenario() -> HiringScenario {
    HiringScenario::generate(&HiringConfig {
        n_train: 120,
        n_valid: 40,
        n_test: 40,
        ..Default::default()
    })
}

fn run_cleaning() -> Vec<navigating_data_errors::core::cleaning::CleaningStep> {
    let s = scenario();
    let (dirty, _) = flip_labels(&s.train, "sentiment", 0.2, 7).unwrap();
    iterative_cleaning_cached(&dirty, &s.train, &s.valid, &s.test, 20, 40, 5).unwrap()
}

#[test]
fn traced_cleaning_emits_parseable_spans_and_cache_counters() {
    let mut path = std::env::temp_dir();
    path.push(format!("nde_observability_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Tracing off (the default): results computed, nothing emitted.
    nde_trace::configure(nde_trace::Sink::Off, Some(&path));
    let baseline_steps = run_cleaning();
    assert_eq!(nde_trace::counter_value("neighbor_cache.hit"), 0);
    assert_eq!(nde_trace::counter_value("neighbor_cache.miss"), 0);
    assert!(nde_trace::span_stats("cleaning.iterative_cached").is_none());
    assert!(!path.exists(), "off sink must not create the JSON file");

    // Tracing on: identical results (observational only), full trajectory.
    nde_trace::configure(nde_trace::Sink::Json, Some(&path));
    let traced_steps = run_cleaning();
    assert_eq!(
        baseline_steps, traced_steps,
        "tracing must never change computed results"
    );

    // A traced pipeline run with per-operator spans rides the same sink.
    let table = navigating_data_errors::tabular::Table::builder()
        .int("k", [1, 2, 3])
        .str("v", ["a", "b", "c"])
        .build()
        .unwrap();
    let plan = Plan::source("t").filter("k > 1", |r| r.int("k").is_some_and(|k| k > 1));
    let traced = plan
        .run_traced(&navigating_data_errors::pipeline::exec::sources(vec![(
            "t", table,
        )]))
        .unwrap();
    assert_eq!(traced.table.num_rows(), 2);

    nde_trace::report();
    nde_trace::configure(nde_trace::Sink::Off, None); // flush + close

    let contents = std::fs::read_to_string(&path).expect("trace file written");
    let records: Vec<JsonValue> = contents
        .lines()
        .map(|line| {
            nde_trace::json::parse(line)
                .unwrap_or_else(|e| panic!("unparseable trace line: {e}\n{line}"))
        })
        .collect();
    assert!(records.len() > 20, "expected a real trajectory");

    let spans_named = |name: &str| {
        records
            .iter()
            .filter(|r| {
                r.get("type").and_then(|v| v.as_str()) == Some("span")
                    && r.get("name").and_then(|v| v.as_str()) == Some(name)
            })
            .count()
    };
    // The cleaning loop re-scored from the warm cache each round…
    assert!(spans_named("importance.knn_shapley_cached") >= 2);
    assert_eq!(spans_named("neighbor_cache.build"), 1);
    assert!(spans_named("cleaning.round") >= 2);
    // …and the pipeline operators each produced a span with row counts.
    for op in ["pipeline.source", "pipeline.filter"] {
        assert_eq!(spans_named(op), 1, "missing span for {op}");
    }
    let filter_span = records
        .iter()
        .find(|r| r.get("name").and_then(|v| v.as_str()) == Some("pipeline.filter"))
        .unwrap();
    assert_eq!(
        filter_span
            .get("fields")
            .and_then(|f| f.get("rows_out"))
            .and_then(|v| v.as_u64()),
        Some(2)
    );

    // NeighborCache hit/miss counters made it into the report.
    let counter_value = |name: &str| {
        records
            .iter()
            .find(|r| {
                r.get("type").and_then(|v| v.as_str()) == Some("counter")
                    && r.get("name").and_then(|v| v.as_str()) == Some(name)
            })
            .and_then(|r| r.get("value"))
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("no counter record named {name}"))
    };
    assert_eq!(counter_value("neighbor_cache.miss"), 1);
    assert!(counter_value("neighbor_cache.hit") >= 2);
    assert_eq!(counter_value("neighbor_cache.repair"), 40);

    let _ = std::fs::remove_file(&path);
}
