//! Cross-crate sanity: the synthetic hiring scenario is actually learnable,
//! and label errors measurably hurt — the premise behind the paper's
//! Figure 2 experiment.

use navigating_data_errors::datagen::errors::flip_labels;
use navigating_data_errors::datagen::{HiringConfig, HiringScenario};
use navigating_data_errors::learners::metrics::accuracy;
use navigating_data_errors::learners::preprocessing::{ColumnSpec, TableEncoder};
use navigating_data_errors::learners::{KnnClassifier, Learner};

fn specs() -> Vec<ColumnSpec> {
    vec![
        ColumnSpec::text("letter_text", 64),
        ColumnSpec::numeric("employer_rating"),
    ]
}

#[test]
fn clean_scenario_is_learnable_and_noise_hurts() {
    let cfg = HiringConfig::default(); // 400 train / 100 valid / 100 test
    let scenario = HiringScenario::generate(&cfg);

    let encoder = TableEncoder::new(specs(), "sentiment");
    let fitted = encoder.fit(&scenario.train).unwrap();
    let train = fitted.transform(&scenario.train).unwrap();
    let test = fitted.transform(&scenario.test).unwrap();

    let model = KnnClassifier::new(5).fit(&train).unwrap();
    let preds = model.predict_batch(&test.x);
    let clean_acc = accuracy(&test.y, &preds);

    // Inject 30% label errors and retrain.
    let (dirty, _) = flip_labels(&scenario.train, "sentiment", 0.3, 7).unwrap();
    let dirty_train = fitted.transform(&dirty).unwrap();
    let dirty_model = KnnClassifier::new(5).fit(&dirty_train).unwrap();
    let dirty_preds = dirty_model.predict_batch(&test.x);
    let dirty_acc = accuracy(&test.y, &dirty_preds);

    assert!(clean_acc > 0.8, "clean accuracy too low: {clean_acc}");
    assert!(
        dirty_acc < clean_acc - 0.02,
        "label noise should hurt: clean {clean_acc} vs dirty {dirty_acc}"
    );
}
