//! Smoke tests pinning the directional claims of every reproduced figure
//! at miniature scale, so `cargo test` guards the experiment conclusions —
//! not just the building blocks — against regressions.

use navigating_data_errors::core::cleaning::{iterative_cleaning, repair_row, Strategy};
use navigating_data_errors::core::scenario::{
    encode_splits, evaluate_model, load_recommendation_letters,
};
use navigating_data_errors::core::zorro_scenario::{
    encode_symbolic, encode_test, estimate_with_zorro,
};
use navigating_data_errors::datagen::errors::{flip_labels, Mechanism};
use navigating_data_errors::datagen::HiringConfig;
use navigating_data_errors::importance::{knn_shapley, rank_ascending};
use navigating_data_errors::uncertain::zorro::ZorroConfig;

fn mini_config() -> HiringConfig {
    HiringConfig {
        n_train: 120,
        n_valid: 50,
        n_test: 80,
        ..Default::default()
    }
}

/// Figure 2's claim: label errors hurt; Shapley-prioritized oracle cleaning
/// recovers part of the loss.
#[test]
fn figure2_cleaning_recovers_accuracy() {
    let s = load_recommendation_letters(&mini_config());
    let clean_acc = evaluate_model(&s.train, &s.test, 5).unwrap();
    // At this miniature scale 15% flips can land on redundant points; 25%
    // reliably dents accuracy (see the full-scale binary for the 10% case).
    let (dirty, _) = flip_labels(&s.train, "sentiment", 0.25, 11).unwrap();
    let dirty_acc = evaluate_model(&dirty, &s.test, 5).unwrap();
    assert!(dirty_acc < clean_acc);

    let (_, train, valid) = encode_splits(&dirty, &s.valid).unwrap();
    let phi = knn_shapley(&train, &valid, 5);
    let mut repaired = dirty.clone();
    for &i in rank_ascending(&phi).iter().take(20) {
        repair_row(&mut repaired, &s.train, i).unwrap();
    }
    let cleaned_acc = evaluate_model(&repaired, &s.test, 5).unwrap();
    assert!(
        cleaned_acc > dirty_acc,
        "cleaning must recover: {dirty_acc} → {cleaned_acc} (clean {clean_acc})"
    );
}

/// Figure 2 task's claim: the prioritized cleaning curve dominates random.
#[test]
fn figure2_prioritized_beats_random_cleaning() {
    let s = load_recommendation_letters(&mini_config());
    let (dirty, _) = flip_labels(&s.train, "sentiment", 0.2, 11).unwrap();
    let auc = |strategy: Strategy, seed: u64| {
        let steps = iterative_cleaning(
            &dirty, &s.train, &s.valid, &s.test, strategy, 15, 45, 5, seed,
        )
        .unwrap();
        steps.iter().map(|st| st.accuracy).sum::<f64>() / steps.len() as f64
    };
    assert!(auc(Strategy::KnnShapley, 3) > auc(Strategy::Random, 3));
}

/// Figure 4's claim: the worst-case loss bound grows monotonically with
/// MNAR missingness.
#[test]
fn figure4_worst_case_loss_is_monotone() {
    let s = load_recommendation_letters(&HiringConfig {
        n_train: 80,
        n_valid: 0,
        n_test: 40,
        ..Default::default()
    });
    let features = ["employer_rating", "age"];
    let test = encode_test(&s.test, &features).unwrap();
    let cfg = ZorroConfig {
        epochs: 15,
        ..Default::default()
    };
    let mut prev = -1.0f64;
    for &pct in &[0.05, 0.15, 0.25] {
        let problem = encode_symbolic(
            &s.train,
            &features,
            "employer_rating",
            pct,
            Mechanism::Mnar,
            42,
        )
        .unwrap();
        let (_, worst) = estimate_with_zorro(&problem, &test, &cfg);
        assert!(
            worst >= prev,
            "loss bound not monotone at {pct}: {worst} < {prev}"
        );
        prev = worst;
    }
}

/// Figure 1's claim: label errors degrade accuracy more than an equal rate
/// of random missing values does.
#[test]
fn figure1_label_errors_hurt_more_than_missingness() {
    use navigating_data_errors::datagen::errors::inject_missing;
    let s = load_recommendation_letters(&mini_config());
    let (flipped, _) = flip_labels(&s.train, "sentiment", 0.25, 13).unwrap();
    let (missing, _) =
        inject_missing(&s.train, "employer_rating", 0.25, Mechanism::Mcar, 13).unwrap();
    let acc_flipped = evaluate_model(&flipped, &s.test, 5).unwrap();
    let acc_missing = evaluate_model(&missing, &s.test, 5).unwrap();
    assert!(
        acc_flipped < acc_missing,
        "flips {acc_flipped} should hurt more than missingness {acc_missing}"
    );
}
