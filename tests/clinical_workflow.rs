//! Cross-crate integration on the clinical scenario (Figure 1's sketch):
//! data validation catches the seeded schema-level errors, the join hazard
//! is visible in inspections, and repairing the registry changes the
//! downstream join output.

use navigating_data_errors::datagen::{ClinicalConfig, ClinicalScenario};
use navigating_data_errors::pipeline::exec::sources;
use navigating_data_errors::pipeline::inspect::inspect;
use navigating_data_errors::pipeline::validation::{
    infer_expectations, validate, Anomaly, ValidationConfig,
};
use navigating_data_errors::pipeline::whatif::rerun_with_repairs;
use navigating_data_errors::pipeline::Plan;
use navigating_data_errors::tabular::Value;

fn setup() -> (ClinicalScenario, nde_tabular::Table, nde_tabular::Table) {
    let scenario = ClinicalScenario::generate(&ClinicalConfig::default());
    let (patients, registry, _) = scenario.corrupted(11);
    (scenario, patients, registry)
}

#[test]
fn validation_catches_every_seeded_error_class() {
    let (scenario, patients, registry) = setup();
    let cfg = ValidationConfig::default();

    let patient_anomalies = validate(
        &patients,
        &infer_expectations(&scenario.patients, &cfg),
        &cfg,
    );
    // invalid age (-1) → out of range; invalid diagnosis (CRC) → unseen.
    assert!(patient_anomalies
        .iter()
        .any(|a| matches!(a, Anomaly::OutOfRange { name, .. } if name == "age")));
    assert!(patient_anomalies.iter().any(
        |a| matches!(a, Anomaly::UnseenCategory { name, values } if name == "diagnosis" && values.contains(&"CRC".to_owned()))
    ));

    let registry_anomalies = validate(
        &registry,
        &infer_expectations(&scenario.registry, &cfg),
        &cfg,
    );
    // missing BRCA rate → null rate; wrong SKCM rate (×5) → out of range.
    assert!(registry_anomalies
        .iter()
        .any(|a| matches!(a, Anomaly::NullRate { name, .. } if name == "death_rate")));
    assert!(registry_anomalies
        .iter()
        .any(|a| matches!(a, Anomaly::OutOfRange { name, .. } if name == "death_rate")));
}

#[test]
fn join_silently_drops_the_invalid_code() {
    let (_, patients, registry) = setup();
    let plan = Plan::source("patients").join(Plan::source("registry"), "diagnosis", "diagnosis");
    let srcs = sources(vec![("patients", patients.clone()), ("registry", registry)]);
    let report = inspect(&plan, &srcs, &[], 1.0).unwrap();
    let join_out = report.operators.last().unwrap().rows_out;
    assert_eq!(
        join_out,
        patients.num_rows() - 1,
        "exactly the CRC row vanishes"
    );
}

#[test]
fn repairing_the_registry_restores_the_row() {
    let (_, patients, registry) = setup();
    let plan = Plan::source("patients").join(Plan::source("registry"), "diagnosis", "diagnosis");
    let srcs = sources(vec![("patients", patients.clone()), ("registry", registry)]);
    let before = plan.run(&srcs).unwrap();
    // Repair: add nothing to the registry, but fix the patient's code via
    // a source repair on the patients table instead.
    let crc_row = (0..patients.num_rows())
        .find(|&i| patients.row(i).unwrap().str("diagnosis") == Some("CRC"))
        .expect("seeded CRC row");
    let after = rerun_with_repairs(
        &plan,
        &srcs,
        "patients",
        &[(crc_row, "diagnosis".into(), Value::from("COAD"))],
    )
    .unwrap();
    assert_eq!(after.num_rows(), before.num_rows() + 1);
}
