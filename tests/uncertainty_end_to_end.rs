//! Cross-crate integration: the uncertainty pillar on realistic scenario
//! data — Zorro soundness against concrete retraining, CPClean consistency
//! with the possible-worlds ensemble, and the challenge workflow.

use navigating_data_errors::core::challenge::{Challenge, ChallengeConfig};
use navigating_data_errors::core::cleaning::Strategy;
use navigating_data_errors::core::scenario::load_recommendation_letters;
use navigating_data_errors::core::zorro_scenario::{
    encode_symbolic, encode_test, estimate_with_zorro,
};
use navigating_data_errors::datagen::errors::Mechanism;
use navigating_data_errors::datagen::HiringConfig;
use navigating_data_errors::learners::KnnClassifier;
use navigating_data_errors::uncertain::possible_worlds::PossibleWorldsEnsemble;
use navigating_data_errors::uncertain::zorro::{train_concrete, ZorroConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FEATURES: &[&str] = &["employer_rating", "age"];

#[test]
fn zorro_bounds_hold_for_sampled_worlds_of_scenario_data() {
    let scenario = load_recommendation_letters(&HiringConfig {
        n_train: 80,
        n_valid: 0,
        n_test: 40,
        ..Default::default()
    });
    let problem = encode_symbolic(
        &scenario.train,
        FEATURES,
        "employer_rating",
        0.1,
        Mechanism::Mnar,
        5,
    )
    .unwrap();
    let test = encode_test(&scenario.test, FEATURES).unwrap();
    let cfg = ZorroConfig {
        epochs: 20,
        ..Default::default()
    };
    let (model, worst) = estimate_with_zorro(&problem, &test, &cfg);

    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..10 {
        let picks: Vec<f64> = (0..problem.x.nrows() * problem.x.ncols())
            .map(|_| rng.random())
            .collect();
        let ncols = problem.x.ncols();
        let world = problem.x.world(&|i, j| picks[i * ncols + j]);
        let (w, b) = train_concrete(&world, &problem.y, &cfg);
        // Concrete MSE of this world's model must respect the bound.
        let mse: f64 = (0..test.len())
            .map(|i| {
                let p: f64 = w
                    .iter()
                    .zip(test.x.row(i))
                    .map(|(wj, &xj)| wj * xj)
                    .sum::<f64>()
                    + b;
                (p - test.y[i]).powi(2)
            })
            .sum::<f64>()
            / test.len() as f64;
        assert!(mse <= worst + 1e-9, "world MSE {mse} exceeds bound {worst}");
        // And per-point predictions stay inside the symbolic ranges.
        for i in 0..test.len().min(5) {
            let x = test.x.row(i);
            let pred: f64 = w.iter().zip(x).map(|(wj, &xj)| wj * xj).sum::<f64>() + b;
            assert!(model.prediction_range(x).contains(pred));
        }
    }
}

#[test]
fn possible_worlds_agree_with_midpoint_on_stable_points() {
    let scenario = load_recommendation_letters(&HiringConfig {
        n_train: 60,
        n_valid: 0,
        n_test: 20,
        ..Default::default()
    });
    let problem = encode_symbolic(
        &scenario.train,
        FEATURES,
        "employer_rating",
        0.1,
        Mechanism::Mcar,
        2,
    )
    .unwrap();
    let y: Vec<usize> = problem.y.iter().map(|&v| v as usize).collect();
    let learner = KnnClassifier::new(5);
    let ensemble = PossibleWorldsEnsemble::train(&learner, &problem.x, &y, 2, 15, 4).unwrap();
    let test = encode_test(&scenario.test, FEATURES).unwrap();
    // On fully-agreeing points, the ensemble majority matches the midpoint
    // world's model by construction.
    use navigating_data_errors::learners::traits::Learner;
    let midpoint_model = learner
        .fit(
            &navigating_data_errors::learners::ClassDataset::new(
                problem.x.midpoint_world(),
                y.clone(),
                2,
            )
            .unwrap(),
        )
        .unwrap();
    let mut checked = 0;
    for i in 0..test.len() {
        let p = ensemble.predict(test.x.row(i));
        if (p.agreement - 1.0).abs() < 1e-12 {
            assert_eq!(p.label, midpoint_model.predict(test.x.row(i)));
            checked += 1;
        }
    }
    assert!(checked > 0, "at least some points should be world-stable");
}

#[test]
fn challenge_full_workflow_improves_over_baseline() {
    let challenge = Challenge::generate(ChallengeConfig {
        scenario: HiringConfig {
            n_train: 120,
            n_valid: 40,
            n_test: 60,
            ..Default::default()
        },
        budget: 30,
        ..Default::default()
    })
    .unwrap();
    let baseline = challenge.baseline_accuracy().unwrap();
    let entry = challenge.play(Strategy::KnnShapley).unwrap();
    assert!(entry.accuracy >= baseline - 1e-9);
    assert!(entry.true_positives > 0);
}
