//! Sequence helpers (`shuffle`, `choose`) — the used subset of `rand::seq`.

use crate::Rng;

/// Uniform index below `n` usable through `dyn`-friendly `Rng` receivers.
fn index<R: Rng + ?Sized>(rng: &mut R, n: usize) -> usize {
    ((u128::from(rng.next_u64()) * n as u128) >> 64) as usize
}

/// In-place random reordering, as in `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = index(rng, i + 1);
            self.swap(i, j);
        }
    }
}

/// Random element selection, as in `rand::seq::IndexedRandom`.
pub trait IndexedRandom {
    /// The element type.
    type Output;

    /// A uniformly random element (`None` when empty).
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
}

impl<T> IndexedRandom for [T] {
    type Output = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[index(rng, self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let pool = ["a", "b", "c"];
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*pool.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
