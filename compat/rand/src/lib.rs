#![deny(missing_docs)]
//! A dependency-free stand-in for the subset of the `rand` 0.9 API used by
//! this workspace, so the whole tree builds and tests without registry
//! access (the repo is developed in an offline container; see README).
//!
//! The stream is a seeded xoshiro256** generator — deterministic for a
//! given seed, which is the only property the workspace relies on (all
//! randomness here is seed-pinned for reproducibility). The bit stream is
//! *not* identical to the real `rand::rngs::StdRng` (ChaCha12); nothing in
//! the workspace asserts cross-implementation equality.

pub mod rngs;
pub mod seq;

use rngs::StdRng;

/// Construction of a generator from seed material. Only the `u64`
/// convenience constructor is used in this workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// The user-facing sampling interface (the used subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random `f64` in `[0, 1)` (53 random mantissa bits).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples a value of the standard distribution of `T` (uniform over
    /// the type's range for integers, `[0, 1)` for floats, fair coin for
    /// `bool`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform sample from `range`. Panics on empty ranges, like `rand`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types with a "standard" distribution for [`Rng::random`].
pub trait Standard {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (the used subset of
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by multiply-shift reduction. A modulo
/// would do for determinism, but this keeps the bias negligible too.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
range_float!(f32, f64);

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng::from_u64_seed(state)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v: i64 = rng.random_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let v: usize = rng.random_range(0..3usize);
            assert!(v < 3);
            let v: i64 = rng.random_range(1i64..=5);
            assert!((1..=5).contains(&v));
            let f: f64 = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_probability_edges() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..4000).filter(|_| rng.random_bool(0.5)).count();
        assert!((1600..2400).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn range_distribution_covers_support() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
