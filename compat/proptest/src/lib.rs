#![deny(missing_docs)]
//! A dependency-free stand-in for the subset of `proptest` used by this
//! workspace, so property tests run in fully offline builds.
//!
//! Faithful to upstream in what matters for these tests — seeded random
//! strategies, `prop_map`/`prop_flat_map` composition, collection and
//! tuple generators, character-class string patterns, `prop_oneof!`, and
//! the `proptest!` macro — and deliberately simpler elsewhere: cases are
//! deterministic per test name, there is **no shrinking** (a failure
//! reports the case number and seed instead), and `prop_assert*` are plain
//! assertions. Case count defaults to 24 and follows `PROPTEST_CASES`.

pub mod strategy;

pub use strategy::{any, Any, Arbitrary, Just, Strategy, TestRng, Union};

/// `prop::…` namespace mirroring upstream's module layout.
pub mod prop {
    /// Collection strategies (`vec`, `hash_set`).
    pub mod collection {
        pub use crate::strategy::collection::{hash_set, vec, SizeRange};
    }
    /// `Option` strategies.
    pub mod option {
        pub use crate::strategy::option::of;
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Number of cases per property (default 24, `PROPTEST_CASES` overrides).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(24)
}

/// FNV-1a of the test name: decorrelates per-test seed streams.
pub fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `body` once per case with a case-specific seeded RNG, labelling
/// panics with the case number and seed (there is no shrinking).
pub fn run_cases(name: &str, mut body: impl FnMut(&mut TestRng)) {
    let base = name_seed(name);
    for case in 0..case_count() {
        let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::from_seed(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            body(&mut rng);
        }));
        if let Err(payload) = outcome {
            eprintln!("proptest case {case} of `{name}` failed (seed 0x{seed:016x}; no shrinking in the offline shim)");
            std::panic::resume_unwind(payload);
        }
    }
}

/// `assert!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies with a shared value type. The first
/// strategy pins the value type; the rest coerce to it.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {
        $crate::strategy::union_of($first, vec![$(Box::new($rest) as _),*])
    };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running [`run_cases`] many seeded cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    $body
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn case_seeds_are_deterministic() {
        let mut first = Vec::new();
        crate::run_cases("self_test", |rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        crate::run_cases("self_test", |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
        assert_eq!(first.len() as u64, crate::case_count());
    }

    proptest! {
        #[test]
        fn ranges_and_collections(
            x in -5.0f64..5.0,
            n in 1usize..10,
            v in prop::collection::vec(0i64..100, 2..6),
            s in "[a-c]{1,4}",
            o in prop::option::of(0usize..3),
            (a, b) in (0u8..4, any::<bool>()),
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (0..100).contains(&e)));
            prop_assert!((1..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            if let Some(val) = o {
                prop_assert!(val < 3);
            }
            prop_assert!(a < 4);
            let _: bool = b;
        }

        #[test]
        fn oneof_map_and_flat_map(
            v in prop_oneof![Just(0usize), 5usize..8],
            w in (1usize..4).prop_flat_map(|n| prop::collection::vec(Just(7u8), n..=n)),
            m in (0i64..10).prop_map(|x| x * 2),
        ) {
            prop_assert!(v == 0 || (5..8).contains(&v));
            prop_assert!(!w.is_empty() && w.len() < 4 && w.iter().all(|&e| e == 7));
            prop_assert!(m % 2 == 0 && (0..20).contains(&m));
        }

        #[test]
        fn hash_sets_have_requested_sizes(set in prop::collection::hash_set(-50i32..50, 2..10)) {
            prop_assert!((2..10).contains(&set.len()));
        }
    }
}
