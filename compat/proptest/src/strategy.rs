//! Strategy combinators: the generation half of proptest, without
//! shrinking. Every strategy is a pure function of the [`TestRng`] stream,
//! so cases are reproducible from the seed printed on failure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// The next 64 random bits (exposed for the runner's self-tests).
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn below(&mut self, n: usize) -> usize {
        self.0.random_range(0..n.max(1))
    }
}

/// A generator of values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draws a uniform sample of the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.random::<$t>()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.random::<bool>()
    }
}

/// Strategy form of [`Arbitrary`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.random_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.0.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Object-safe strategy facet, for [`Union`] (`prop_oneof!`).
pub trait DynStrategy<V> {
    /// Draws one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<V, S: Strategy<Value = V>> DynStrategy<V> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> V {
        self.generate(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    choices: Vec<Box<dyn DynStrategy<V>>>,
}

impl<V> Union<V> {
    /// A union over the given non-empty choice list.
    pub fn new(choices: Vec<Box<dyn DynStrategy<V>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Union { choices }
    }
}

/// Builds a [`Union`] with the value type pinned by `first` — the shape
/// `prop_oneof!` expands to (a bare `Box<dyn _>` vec would leave the value
/// type to integer fallback).
pub fn union_of<S>(first: S, rest: Vec<Box<dyn DynStrategy<S::Value>>>) -> Union<S::Value>
where
    S: Strategy + 'static,
{
    let mut choices: Vec<Box<dyn DynStrategy<S::Value>>> = vec![Box::new(first)];
    choices.extend(rest);
    Union::new(choices)
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.choices.len());
        self.choices[pick].generate_dyn(rng)
    }
}

/// Character-class string patterns: the `"[class]{lo,hi}"` subset of
/// proptest's regex strategies (all this workspace uses).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_pattern(self);
        let len = lo + rng.below(hi - lo + 1);
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len())])
            .collect()
    }
}

/// Parses `[class]{lo,hi}` where `class` is literal characters and `x-y`
/// ranges (e.g. `[a-z]{0,6}`, `[ -~]{0,20}`). Panics on anything richer —
/// the offline shim does not implement full regex syntax.
fn unsupported(pattern: &str) -> ! {
    panic!(
        "offline proptest shim only supports \"[class]{{lo,hi}}\" string patterns, got {pattern:?}"
    )
}

fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let rest = pattern
        .strip_prefix('[')
        .unwrap_or_else(|| unsupported(pattern));
    let (class, counts) = rest.split_once(']').unwrap_or_else(|| unsupported(pattern));
    let counts = counts
        .strip_prefix('{')
        .and_then(|c| c.strip_suffix('}'))
        .unwrap_or_else(|| unsupported(pattern));
    let (lo, hi) = counts.split_once(',').unwrap_or((counts, counts));
    let lo: usize = lo.trim().parse().unwrap_or_else(|_| unsupported(pattern));
    let hi: usize = hi.trim().parse().unwrap_or_else(|_| unsupported(pattern));
    assert!(lo <= hi, "empty repetition in {pattern:?}");

    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            assert!(a <= b, "inverted range in {pattern:?}");
            for c in a..=b {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
    (alphabet, lo, hi)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Size specification accepted by the collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            self.lo + super::TestRng::below(rng, self.hi - self.lo + 1)
        }
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `HashSet` of `size` distinct elements drawn from `element`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut set = HashSet::with_capacity(n);
            let budget = 64 + 32 * n;
            for _ in 0..budget {
                if set.len() == n {
                    return set;
                }
                set.insert(self.element.generate(rng));
            }
            assert!(
                set.len() >= self.size.lo,
                "hash_set strategy could not reach {} distinct elements",
                self.size.lo
            );
            set
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// `Some` three times out of four, `None` otherwise (matching
    /// upstream's default `None` weight closely enough for these tests).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if TestRng::below(rng, 4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}
