#![deny(missing_docs)]
//! A dependency-free stand-in for the subset of `criterion` used by this
//! workspace, so `cargo bench` (and `cargo test`, which compiles and runs
//! `harness = false` bench targets with `--test`) works in fully offline
//! builds.
//!
//! Each benchmark runs a short warm-up, then a bounded measurement window
//! (~0.3 s by default), and reports the median iteration time. There are
//! no statistical comparisons, plots, or HTML reports. When invoked with
//! `--test` (what `cargo test` passes to bench binaries) every closure runs
//! exactly once, keeping the tier-1 suite fast.

use std::time::{Duration, Instant};

/// Re-exported for API compatibility; inlined to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only form (the group name provides the function part).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    test_mode: bool,
    measure_for: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, collecting per-iteration samples until the
    /// measurement window closes (or exactly once in `--test` mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: one untimed call (pays one-time costs like lazy init).
        black_box(routine());
        let window = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if window.elapsed() >= self.measure_for && !self.samples.is_empty() {
                break;
            }
        }
    }
}

/// Top-level driver handed to each `criterion_group!` function.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a standalone benchmark (its own single-entry group).
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, f: F) -> &mut Self {
        let group = self.benchmark_group(name);
        group.run(name.into(), f);
        group.finish();
        self
    }

    fn run_one(&self, full_name: &str, mut f: impl FnMut(&mut Bencher<'_>)) {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            test_mode: self.test_mode,
            measure_for: Duration::from_millis(300),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("{full_name}: ok (test mode)");
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!(
            "{full_name}: median {median:?} over {} iterations",
            samples.len()
        );
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the offline shim bounds runs by wall
    /// clock rather than sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the measurement window stays bounded.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run(id.into(), f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here; present for API compatibility).
    pub fn finish(self) {}

    fn run(&self, id: BenchmarkId, f: impl FnMut(&mut Bencher<'_>)) {
        let full_name = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&full_name, f);
    }
}

/// Binds benchmark functions into a runnable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::from_parameter(200).label, "200");
        assert_eq!(BenchmarkId::new("f", 8).label, "f/8");
        assert_eq!(BenchmarkId::from("x").label, "x");
    }

    #[test]
    fn bencher_runs_payload() {
        let mut count = 0u32;
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            test_mode: true,
            measure_for: Duration::from_millis(1),
        };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert!(samples.is_empty());
    }

    #[test]
    fn measured_mode_collects_samples() {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            test_mode: false,
            measure_for: Duration::from_millis(5),
        };
        b.iter(|| std::hint::black_box(3 * 7));
        assert!(!samples.is_empty());
    }
}
