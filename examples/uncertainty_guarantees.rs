//! Learning with guarantees when cleaning is impossible: Zorro prediction
//! ranges, CPClean certain predictions, dataset-multiplicity ranges, and
//! certified robustness to poisoning — the paper's third pillar in one
//! program.
//!
//! ```text
//! cargo run --release --example uncertainty_guarantees
//! ```

use navigating_data_errors::core::scenario::load_recommendation_letters;
use navigating_data_errors::core::zorro_scenario::{
    encode_symbolic, encode_test, estimate_with_zorro, imputation_baseline,
};
use navigating_data_errors::datagen::errors::Mechanism;
use navigating_data_errors::datagen::HiringConfig;
use navigating_data_errors::learners::models::bagging::BaggingClassifier;
use navigating_data_errors::learners::{KnnClassifier, Matrix};
use navigating_data_errors::uncertain::cpclean::{certain_prediction, IncompleteDataset};
use navigating_data_errors::uncertain::incomplete::IncompleteMatrix;
use navigating_data_errors::uncertain::interval::Interval;
use navigating_data_errors::uncertain::multiplicity::{LabelUncertainty, RidgeMultiplicity};
use navigating_data_errors::uncertain::robustness::certify;
use navigating_data_errors::uncertain::zorro::ZorroConfig;
use std::sync::Arc;

fn main() {
    let cfg = HiringConfig {
        n_train: 150,
        n_valid: 0,
        n_test: 60,
        ..Default::default()
    };
    let scenario = load_recommendation_letters(&cfg);
    let features = ["employer_rating", "age"];

    // --- Zorro: guaranteed worst-case loss under 15% MNAR missingness.
    let problem = encode_symbolic(
        &scenario.train,
        &features,
        "employer_rating",
        0.15,
        Mechanism::Mnar,
        42,
    )
    .expect("symbolic encoding");
    let test = encode_test(&scenario.test, &features).expect("test encoding");
    let (model, worst) = estimate_with_zorro(&problem, &test, &ZorroConfig::default());
    println!("Zorro worst-case MSE bound: {worst:.4}");
    println!(
        "Mean-imputation baseline MSE (no guarantee): {:.4}",
        imputation_baseline(&problem, &test)
    );
    let range = model.prediction_range(test.x.row(0));
    println!(
        "Guaranteed prediction range for test point 0: [{:.3}, {:.3}]\n",
        range.lo, range.hi
    );

    // --- CPClean: is the k-NN prediction certain despite missing cells?
    let mut im = IncompleteMatrix::from_exact(&test.x);
    im.set_missing(0, 0, Interval::new(-2.0, 2.0));
    let y: Vec<usize> = test.y.iter().map(|&v| v as usize).collect();
    let data = IncompleteDataset {
        x: im,
        y,
        n_classes: 2,
    };
    match certain_prediction(&data, &[0.0, 0.0], 3) {
        Some(label) => {
            println!("CPClean: prediction is CERTAIN = class {label} (no cleaning needed)")
        }
        None => println!("CPClean: prediction depends on the missing values — clean first"),
    }

    // --- Dataset multiplicity: exact prediction range under label noise.
    let x_train = {
        let rows: Vec<Vec<f64>> = (0..problem.x.nrows())
            .map(|i| {
                let mut r: Vec<f64> = problem.x.row(i).iter().map(|c| c.mid()).collect();
                r.push(1.0); // intercept column
                r
            })
            .collect();
        Matrix::from_rows(&rows).expect("matrix")
    };
    let analysis = RidgeMultiplicity::new(x_train, problem.y.clone(), 1e-4).expect("analysis");
    let unc = LabelUncertainty::uniform(problem.y.len(), 0.2).with_budget(10);
    let probe = [0.5, 0.1, 1.0];
    let (lo, hi) = analysis.prediction_range(&probe, &unc);
    println!(
        "Multiplicity: if ≤10 labels are off by ±0.2, the prediction ranges over [{lo:.3}, {hi:.3}]"
    );
    println!(
        "Decision robust at threshold 0.5: {}\n",
        analysis.decision_is_robust(&probe, 0.5, &unc)
    );

    // --- Certified robustness: partitioned bagging vote margins.
    let train_world = problem.x.midpoint_world();
    let y_class: Vec<usize> = problem.y.iter().map(|&v| v as usize).collect();
    let train_ds = navigating_data_errors::learners::ClassDataset::new(train_world, y_class, 2)
        .expect("dataset");
    let bag = BaggingClassifier::partitioned(Arc::new(KnnClassifier::new(1)), 11);
    let ensemble = bag.fit_ensemble(&train_ds).expect("ensemble");
    let cert = certify(&ensemble, test.x.row(0));
    println!(
        "Certified robustness: prediction class {} survives any poisoning of ≤{} training rows.",
        cert.label, cert.radius
    );
}
