//! The clinical sketch of the paper's Figure 1, end to end: a patient
//! table with the figure's four error classes joined against a dirty
//! cancer registry — detected by data validation, traced by provenance,
//! and prioritized for repair by importance.
//!
//! ```text
//! cargo run --release --example clinical_registry
//! ```

use navigating_data_errors::datagen::{ClinicalConfig, ClinicalScenario};
use navigating_data_errors::importance::{knn_shapley, rank_ascending};
use navigating_data_errors::learners::preprocessing::{ColumnSpec, TableEncoder};
use navigating_data_errors::pipeline::exec::sources;
use navigating_data_errors::pipeline::validation::{
    infer_expectations, validate, ValidationConfig,
};
use navigating_data_errors::pipeline::Plan;

fn main() {
    let scenario = ClinicalScenario::generate(&ClinicalConfig::default());
    let (patients, registry, dropped) = scenario.corrupted(11);
    println!(
        "Clinical scenario: {} patients ({} silently dropped by selection bias), {} registry rows.",
        patients.num_rows(),
        dropped.len(),
        registry.num_rows()
    );

    // 1. Data validation catches the schema-level damage immediately.
    let cfg = ValidationConfig::default();
    let expectations = infer_expectations(&scenario.patients, &cfg);
    println!("\nValidation anomalies against the clean-data expectations:");
    for anomaly in validate(&patients, &expectations, &cfg) {
        println!("  {anomaly:?}");
    }
    let registry_expectations = infer_expectations(&scenario.registry, &cfg);
    for anomaly in validate(&registry, &registry_expectations, &cfg) {
        println!("  {anomaly:?}");
    }

    // 2. The pipeline silently drops the invalid CRC row at the join —
    //    visible in per-operator row counts.
    let plan = Plan::source("patients").join(Plan::source("registry"), "diagnosis", "diagnosis");
    let srcs = sources(vec![
        ("patients", patients.clone()),
        ("registry", registry.clone()),
    ]);
    let report = navigating_data_errors::pipeline::inspect::inspect(&plan, &srcs, &["sex"], 0.05)
        .expect("inspection");
    println!();
    for op in &report.operators {
        println!("{:45} rows={}", op.label, op.rows_out);
    }
    println!("inspection warnings: {:?}", report.warnings);

    // 3. Importance over the joined output flags the most harmful patients
    //    for the survival model.
    let joined = plan.run(&srcs).expect("pipeline");
    let encoder = TableEncoder::new(
        vec![
            ColumnSpec::numeric("age"),
            ColumnSpec::numeric("death_rate"),
            ColumnSpec::categorical("sex"),
        ],
        "survived",
    );
    let (fitted, train) = encoder.fit_transform(&joined).expect("encode");
    let valid = fitted
        .transform(&joined.sample(60, 9).expect("sample"))
        .expect("encode");
    let importances = knn_shapley(&train, &valid, 5);
    let worst: Vec<usize> = rank_ascending(&importances).into_iter().take(5).collect();
    println!("\nFive most harmful joined records (by KNN-Shapley):");
    for &i in &worst {
        println!(
            "  patient_id={} diagnosis={} survived={} importance={:.4}",
            joined.get(i, "patient_id").unwrap(),
            joined.get(i, "diagnosis").unwrap(),
            joined.get(i, "survived").unwrap(),
            importances[i]
        );
    }
}
