//! Fairness debugging: inject group-conditional label bias, watch the
//! fairness metrics of Figure 1 degrade, and explain the violation with
//! Gopher-style pattern explanations over the training data.
//!
//! ```text
//! cargo run --release --example fairness_audit
//! ```

use navigating_data_errors::core::scenario::encode_splits;
use navigating_data_errors::core::scenario::load_recommendation_letters;
use navigating_data_errors::datagen::errors::label_bias;
use navigating_data_errors::datagen::HiringConfig;
use navigating_data_errors::importance::gopher::fairness_explanations;
use navigating_data_errors::learners::metrics::{
    accuracy, demographic_parity_difference, equalized_odds_difference,
};
use navigating_data_errors::learners::traits::Learner;
use navigating_data_errors::learners::KnnClassifier;
use nde_tabular::Table;

fn fairness_panel(train: &Table, test: &Table) -> (f64, f64, f64) {
    let (_, train_ds, test_ds) = encode_splits(train, test).expect("encoding");
    let model = KnnClassifier::new(5).fit(&train_ds).expect("fit");
    let preds = model.predict_batch(&test_ds.x);
    let groups: Vec<usize> = test
        .column("sex")
        .expect("sex column")
        .iter()
        .map(|v| usize::from(v.as_str() == Some("m")))
        .collect();
    (
        accuracy(&test_ds.y, &preds),
        equalized_odds_difference(&test_ds.y, &preds, &groups),
        demographic_parity_difference(&test_ds.y, &preds, &groups),
    )
}

fn main() {
    let cfg = HiringConfig {
        n_train: 300,
        n_valid: 100,
        n_test: 200,
        ..Default::default()
    };
    let scenario = load_recommendation_letters(&cfg);

    let (acc, eo, dp) = fairness_panel(&scenario.train, &scenario.test);
    println!(
        "clean   : accuracy {acc:.3}  equalized-odds gap {eo:.3}  demographic-parity gap {dp:.3}"
    );

    // Systematically flip positive letters of male applicants to negative.
    let (biased, report) = label_bias(
        &scenario.train,
        "sex",
        "m",
        "sentiment",
        "positive",
        "negative",
        0.8,
        11,
    )
    .expect("bias injection");
    println!(
        "injected label bias into {} rows (sex=m, positive→negative)",
        report.count()
    );
    let (acc_b, eo_b, dp_b) = fairness_panel(&biased, &scenario.test);
    println!("biased  : accuracy {acc_b:.3}  equalized-odds gap {eo_b:.3}  demographic-parity gap {dp_b:.3}");

    // Gopher: which predicate-described training subset explains the gap?
    // The violation function retrains without the candidate subset and
    // reports the equalized-odds gap.
    let violation = |removed: &[usize]| -> f64 {
        let keep: Vec<usize> = (0..biased.num_rows())
            .filter(|i| !removed.contains(i))
            .collect();
        let subset = biased.take(&keep).expect("subset");
        if subset.num_rows() < 20 {
            return f64::INFINITY; // refuse degenerate removals
        }
        fairness_panel(&subset, &scenario.test).1
    };
    let explanations =
        fairness_explanations(&biased, &["sex", "degree"], 2, 10, &violation).expect("gopher");
    println!("\nTop Gopher explanations (remove subset → equalized-odds reduction):");
    for e in explanations.iter().take(3) {
        println!(
            "  {:30} support={:<4} Δviolation={:+.3}  per-tuple={:+.5}",
            e.pattern.to_string(),
            e.support,
            e.violation_reduction,
            e.interestingness
        );
    }
    // Verdict: do the best explanations point at the group the bias was
    // injected into?
    let implicates_m = explanations
        .iter()
        .take(3)
        .any(|e| e.pattern.to_string().contains("sex=m"));
    if implicates_m {
        println!(
            "\nThe top explanations implicate sex=m subsets — exactly where the \
             bias was injected."
        );
    } else {
        println!(
            "\nNo sex=m subset tops the list this run: the model never sees the \
             sex attribute, so the injected label noise can drown in text \
             variance — rerun with a larger scenario to sharpen the signal."
        );
    }
}
