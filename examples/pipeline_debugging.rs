//! Pipeline debugging end-to-end: build the Figure 3 preprocessing
//! pipeline, visualise its plan, inspect it for distribution shifts,
//! screen it ArgusEyes-style, attribute errors to source rows via
//! provenance (Datascope), and answer a deletion what-if incrementally.
//!
//! ```text
//! cargo run --release --example pipeline_debugging
//! ```

use navigating_data_errors::core::pipeline_scenario::{
    datascope_for_train_source, figure3_plan, pipeline_sources, run_figure3,
};
use navigating_data_errors::core::scenario::load_recommendation_letters;
use navigating_data_errors::datagen::errors::flip_labels;
use navigating_data_errors::datagen::HiringConfig;
use navigating_data_errors::importance::rank_ascending;
use navigating_data_errors::learners::KnnClassifier;
use navigating_data_errors::pipeline::arguseyes::{screen, ScreeningConfig};
use navigating_data_errors::pipeline::inspect::inspect;
use navigating_data_errors::pipeline::whatif::delete_source_rows;

fn main() {
    let cfg = HiringConfig {
        n_train: 300,
        n_valid: 100,
        n_test: 100,
        ..Default::default()
    };
    let mut scenario = load_recommendation_letters(&cfg);
    let (dirty, report) = flip_labels(&scenario.train, "sentiment", 0.15, 5).expect("inject");
    scenario.train = dirty;

    // The pipeline and its plan (nde.show_query_plan).
    let plan = figure3_plan();
    println!("{}", plan.ascii());
    println!("(DOT available via plan.dot() for Graphviz rendering)\n");

    // mlinspect-style inspection: does any operator shift the sex ratio?
    let srcs = pipeline_sources(&scenario, scenario.train.clone());
    let inspection = inspect(&plan, &srcs, &["sex"], 0.1).expect("inspection");
    for op in &inspection.operators {
        println!(
            "{:55} rows={:<5} nulls={}",
            op.label, op.rows_out, op.nulls_out
        );
    }
    println!("inspection warnings: {:?}\n", inspection.warnings);

    // Execute with provenance and attribute importance to source rows.
    let run = run_figure3(&scenario).expect("pipeline run");
    let scores = datascope_for_train_source(&scenario, &run, 5).expect("datascope");
    let suspects: Vec<usize> = rank_ascending(&scores).into_iter().take(20).collect();
    let hits = suspects.iter().filter(|&&i| report.is_affected(i)).count();
    println!("Datascope: {hits}/20 of the top source suspects are injected errors.");

    // What-if: drop the suspects *without* re-running the pipeline.
    let effect = delete_source_rows(&run.traced, "train_df", &suspects).expect("what-if");
    println!(
        "Deleting them removes {} of {} pipeline output rows (incrementally).",
        run.traced.table.num_rows() - effect.table.num_rows(),
        run.traced.table.num_rows()
    );

    // ArgusEyes-style CI screening of the encoded splits.
    let valid_srcs = pipeline_sources(&scenario, scenario.valid.clone());
    let valid_out = plan.run(&valid_srcs).expect("pipeline");
    let valid = run.encoder.transform(&valid_out).expect("encode");
    let learner = KnnClassifier::new(5);
    let screening = screen(
        &ScreeningConfig::default(),
        &learner,
        &run.train,
        &valid,
        None,
    )
    .expect("screen");
    println!("\nArgusEyes screening ({} issues):", screening.issues.len());
    for issue in &screening.issues {
        println!("  [{:?}] {}: {}", issue.severity, issue.check, issue.detail);
    }
    println!("CI gate passed: {}", screening.passed());
}
