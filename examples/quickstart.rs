//! Quickstart: the paper's Figure 2 workflow in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Loads the synthetic recommendation-letter scenario, injects label
//! errors, identifies them with KNN-Shapley, and repairs the worst 25 —
//! watching accuracy drop and recover.

use navigating_data_errors::core::cleaning::repair_row;
use navigating_data_errors::core::scenario::{
    encode_splits, evaluate_model, load_recommendation_letters,
};
use navigating_data_errors::datagen::errors::flip_labels;
use navigating_data_errors::datagen::HiringConfig;
use navigating_data_errors::importance::{knn_shapley, rank_ascending};

fn main() {
    // 1. Load train/valid/test splits of the hiring scenario.
    let scenario = load_recommendation_letters(&HiringConfig::default());

    // 2. Inject 10% label errors into the training data.
    let (dirty, _) = flip_labels(&scenario.train, "sentiment", 0.1, 7).expect("injection");
    let acc_dirty = evaluate_model(&dirty, &scenario.test, 5).expect("evaluation");
    println!("Accuracy with data errors: {acc_dirty:.3}.");

    // 3. Compute KNN-Shapley importance of every training tuple against
    //    the validation set; the most harmful tuples rank lowest.
    let (_, train, valid) = encode_splits(&dirty, &scenario.valid).expect("encoding");
    let importances = knn_shapley(&train, &valid, 5);
    let lowest: Vec<usize> = rank_ascending(&importances).into_iter().take(25).collect();

    // 4. Show the three most suspicious letters, like the paper's Figure 2.
    for &i in lowest.iter().take(3) {
        let text = dirty.get(i, "letter_text").unwrap().to_string();
        let label = dirty.get(i, "sentiment").unwrap().to_string();
        let excerpt: String = text.chars().take(60).collect();
        println!("  {excerpt}…  [{label}]  importance {:.4}", importances[i]);
    }

    // 5. Replace the suspects with clean ground truth (the oracle) and
    //    retrain.
    let mut repaired = dirty.clone();
    for &i in &lowest {
        repair_row(&mut repaired, &scenario.train, i).expect("repair");
    }
    let acc_cleaned = evaluate_model(&repaired, &scenario.test, 5).expect("evaluation");
    println!("Cleaning some records improved accuracy from {acc_dirty:.3} to {acc_cleaned:.3}.");
}
